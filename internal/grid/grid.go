// Package grid implements the regular main-memory grid index that all three
// monitoring methods (CPM, YPK-CNN, SEA-CNN) share, following Section 3 and
// Figure 3.3 of the paper.
//
// The workspace is partitioned into Size×Size square cells of side δ =
// extent/Size. Cell c_{i,j} (column i, row j, counted from the low-left
// corner) holds the objects with x ∈ [i·δ, (i+1)·δ) and y ∈ [j·δ, (j+1)·δ);
// conversely an object at (x,y) belongs to c_{⌊x/δ⌋,⌊y/δ⌋}. Each cell keeps
// (i) the set of objects inside it and (ii) the influence list — the queries
// whose influence (or answer) region contains the cell.
//
// Invariant: every stored object position lies inside the workspace (and
// therefore inside its cell's rectangle). Insert and Move clamp incoming
// positions onto the workspace border (Clamp); without that, an object
// beyond the border would sit in a cell whose rect does not contain it, and
// mindist-based search pruning could skip the cell holding the true nearest
// neighbor (the property test TestOutOfWorkspaceObjects pins this).
//
// The paper prescribes hash tables for both sets so that deletion and
// insertion take expected constant time (Time_ind = 2 in the Section 4.1
// model). This implementation substitutes dense swap-delete slices
// (documented substitution, README "Design notes"): object sets carry an
// intrusive object→slot index so removal stays O(1), influence sets are
// short dense arrays where a linear swap-delete beats hashing in practice.
// Both keep the paper's asymptotics while making the three hot loops —
// relocation, influence scans, cell scans — branch-predictable pointer-free
// slice walks with zero allocation. The grid also owns the object position
// store and the cell-access counter that backs Figure 6.3b.
package grid

import (
	"fmt"
	"math"
	"sync/atomic"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// CellIndex addresses a cell as j*Size + i. The value -1 means "no cell".
type CellIndex int32

// NoCell is the sentinel CellIndex.
const NoCell CellIndex = -1

// Cell holds the per-cell book-keeping of Figure 3.3: the object list and
// the influence list. Both are dense swap-delete slices (nil until first
// use); empty cells of a fine grid cost two nil slice headers each.
type Cell struct {
	objects   []model.ObjectID
	influence []model.QueryID
}

// Grid is the object index.
type Grid struct {
	size      int       // cells per dimension
	delta     float64   // cell side length δ
	workspace geom.Rect // indexed area; points outside are clamped onto the border
	cells     []Cell

	positions []geom.Point // dense object position store, indexed by ObjectID
	alive     []bool
	slots     []int32 // intrusive index: object -> slot in its cell's object slice

	count        int   // live objects
	nonEmpty     int   // cells currently holding at least one object
	cellAccesses int64 // complete scans of cell object lists

	// Shared-mode epoch guard (see epoch.go). `shared` is set once at
	// construction time by a sharded monitor; `writing` is atomic so the
	// guard assertions in race builds are themselves race-free; `epoch`
	// only changes inside write windows and is read between them.
	shared  bool
	epoch   int64
	writing atomic.Bool
}

// New creates a grid of size×size cells over the given workspace.
// It panics on a non-positive size or an empty workspace: an invalid
// geometry is a programming error. The cell count can later be changed
// online with Rebuild; the workspace is fixed for the grid's lifetime.
func New(size int, workspace geom.Rect) *Grid {
	if size <= 0 {
		panic(fmt.Sprintf("grid: non-positive size %d", size))
	}
	if workspace.Width() <= 0 || workspace.Height() <= 0 {
		panic(fmt.Sprintf("grid: degenerate workspace %+v", workspace))
	}
	if workspace.Width() != workspace.Height() {
		// The paper's cells are square (δ×δ). Rectangular workspaces would
		// make δ ambiguous; the generator normalizes to the unit square.
		panic(fmt.Sprintf("grid: workspace must be square, got %+v", workspace))
	}
	return &Grid{
		size:      size,
		delta:     workspace.Width() / float64(size),
		workspace: workspace,
		cells:     make([]Cell, size*size),
	}
}

// NewUnit creates a grid over the unit square [0,1]×[0,1], the canonical
// workspace of the paper's analysis and experiments.
func NewUnit(size int) *Grid {
	return New(size, geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 1, Y: 1}})
}

// Size returns the number of cells per dimension.
func (g *Grid) Size() int { return g.size }

// Delta returns the cell side length δ.
func (g *Grid) Delta() float64 { return g.delta }

// Workspace returns the indexed area.
func (g *Grid) Workspace() geom.Rect { return g.workspace }

// Count returns the number of live objects.
func (g *Grid) Count() int { return g.count }

// NonEmptyCells returns how many cells currently hold at least one object.
// It is maintained incrementally (O(1) per insert/delete/relocation), so
// the rebalancing policy can read occupancy every cycle for free.
func (g *Grid) NonEmptyCells() int { return g.nonEmpty }

// MeanOccupancy returns the average number of live objects per non-empty
// cell — the density statistic the online rebalancing policy steers by.
// It is 0 for an empty grid.
func (g *Grid) MeanOccupancy() float64 {
	if g.nonEmpty == 0 {
		return 0
	}
	return float64(g.count) / float64(g.nonEmpty)
}

// Clamp projects p onto the workspace. Stored object positions are always
// clamped (see Insert/Move): a raw position outside the workspace would lie
// outside its cell's rectangle, and mindist-ordered search pruning — which
// lower-bounds every object in a cell by the cell rect's mindist — could
// then prune the cell holding the true nearest neighbor. Clamping restores
// the containment invariant for any query point, inside the workspace or
// not.
func (g *Grid) Clamp(p geom.Point) geom.Point {
	if p.X < g.workspace.Lo.X {
		p.X = g.workspace.Lo.X
	} else if p.X > g.workspace.Hi.X {
		p.X = g.workspace.Hi.X
	}
	if p.Y < g.workspace.Lo.Y {
		p.Y = g.workspace.Lo.Y
	} else if p.Y > g.workspace.Hi.Y {
		p.Y = g.workspace.Hi.Y
	}
	return p
}

// Rebuild re-partitions the workspace into newSize×newSize cells and
// migrates every live object into the fresh cell array — the grid half of
// online rebalancing (δ becomes extent/newSize). The dense object store
// (positions, liveness, slot index) survives; cell object lists are rebuilt
// in ascending id order, and the intrusive slots are rewritten as they go.
//
// Influence lists do NOT survive: they are cell-resolution book-keeping,
// and the engine(s) owning the queries must reinstall them (together with
// each query's visit list and heap) right after — see core.Engine.Rebalance
// and core.Engine.Reindex. The cumulative cell-access counter is preserved:
// a rebuild is index maintenance, not search work.
//
// Rebuild opens its own write window, so on a shared grid it is safe to
// call directly between fan-outs and it advances the epoch.
func (g *Grid) Rebuild(newSize int) {
	if newSize <= 0 {
		panic(fmt.Sprintf("grid: non-positive rebuild size %d", newSize))
	}
	g.BeginWrites()
	defer g.EndWrites()
	g.size = newSize
	g.delta = g.workspace.Width() / float64(newSize)
	g.cells = make([]Cell, newSize*newSize)
	g.nonEmpty = 0
	for id, ok := range g.alive {
		if ok {
			g.addObject(g.CellOf(g.positions[id]), model.ObjectID(id))
		}
	}
}

// ColRow returns the column and row of the cell covering p. Points on or
// beyond the workspace border are clamped into the border cells, so every
// point maps to a valid cell.
func (g *Grid) ColRow(p geom.Point) (int, int) {
	i := int(math.Floor((p.X - g.workspace.Lo.X) / g.delta))
	j := int(math.Floor((p.Y - g.workspace.Lo.Y) / g.delta))
	return clamp(i, g.size), clamp(j, g.size)
}

func clamp(v, size int) int {
	if v < 0 {
		return 0
	}
	if v >= size {
		return size - 1
	}
	return v
}

// CellOf returns the index of the cell covering p.
func (g *Grid) CellOf(p geom.Point) CellIndex {
	i, j := g.ColRow(p)
	return g.Index(i, j)
}

// Index converts (col, row) to a CellIndex, or NoCell when out of range.
func (g *Grid) Index(col, row int) CellIndex {
	if col < 0 || col >= g.size || row < 0 || row >= g.size {
		return NoCell
	}
	return CellIndex(row*g.size + col)
}

// Split converts a CellIndex back to (col, row).
func (g *Grid) Split(c CellIndex) (int, int) {
	return int(c) % g.size, int(c) / g.size
}

// CellRect returns the geometric extent of cell (col, row).
func (g *Grid) CellRect(col, row int) geom.Rect {
	lo := geom.Point{
		X: g.workspace.Lo.X + float64(col)*g.delta,
		Y: g.workspace.Lo.Y + float64(row)*g.delta,
	}
	return geom.Rect{Lo: lo, Hi: geom.Point{X: lo.X + g.delta, Y: lo.Y + g.delta}}
}

// RectOf returns the geometric extent of cell c.
func (g *Grid) RectOf(c CellIndex) geom.Rect {
	col, row := g.Split(c)
	return g.CellRect(col, row)
}

// MinDist returns mindist(c, q) for cell c.
func (g *Grid) MinDist(c CellIndex, q geom.Point) float64 {
	return g.RectOf(c).MinDist(q)
}
