//go:build race || cpmassert

package grid

import (
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// This file holds the negative controls of the epoch guard: tests proving
// the assertions actually fire when the phase-based sharing contract is
// violated. They compile only where the guards do (race or cpmassert
// builds) — CI's race job runs them.

// mustPanic runs f and fails the test unless it panics.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

// TestGuardTripsOnWriteOutsideWindow checks assertWritable: mutating a
// shared grid without an open write window must panic.
func TestGuardTripsOnWriteOutsideWindow(t *testing.T) {
	g := NewUnit(8)
	g.SetShared(true)
	mustPanic(t, "Insert outside write window", func() {
		_ = g.Insert(1, geom.Point{X: 0.5, Y: 0.5})
	})
	mustPanic(t, "Move outside write window", func() {
		_, _, _ = g.Move(1, geom.Point{X: 0.25, Y: 0.25})
	})
	mustPanic(t, "Delete outside write window", func() {
		_ = g.Delete(1)
	})
}

// TestGuardTripsOnConcurrentEpochRead is the concurrent negative control:
// a reader goroutine touching the shared grid while a write window is
// staged (exactly what a buggy monitor fanning out mid-apply would do)
// must trip the epoch assertion.
//
// The test is race-detector clean by construction: the assertions read
// only the immutable shared flag and the atomic writing flag, panicking
// BEFORE any grid memory is touched, and the window here stages no actual
// writes, so no non-atomic memory is accessed from two goroutines.
func TestGuardTripsOnConcurrentEpochRead(t *testing.T) {
	g := NewUnit(8)
	g.BeginWrites()
	if err := g.Insert(1, geom.Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	g.EndWrites()
	g.SetShared(true)

	// Positive control: reads at a stable epoch are fine, concurrently too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := g.Position(1); !ok {
			t.Error("object 1 missing at stable epoch")
		}
	}()
	<-done

	g.BeginWrites() // stage a write window; no writes are performed
	windowOpen := make(chan struct{})
	tripped := make(chan bool)
	go func() {
		<-windowOpen
		trippedNow := func() (p bool) {
			defer func() { p = recover() != nil }()
			_, _ = g.Position(1)
			return
		}()
		tripped <- trippedNow
	}()
	close(windowOpen)
	if !<-tripped {
		t.Error("read of shared grid inside a write window did not panic")
	}
	g.EndWrites()

	// And the same read is legal again once the window closed.
	if _, ok := g.Position(1); !ok {
		t.Error("object 1 missing after window closed")
	}
}

// TestGuardAllowsPrivateGrids checks the guards stay inert on grids never
// put in shared mode (the classic one-engine-one-grid layout and the
// YPK/SEA baselines): reads during a write window are legal there.
func TestGuardAllowsPrivateGrids(t *testing.T) {
	g := NewUnit(8)
	g.BeginWrites()
	if err := g.Insert(1, geom.Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Position(1); !ok {
		t.Error("private grid read inside write window failed")
	}
	g.EndWrites()
}

// TestGuardTripsInsideOwnWindow checks that even a same-goroutine read
// through a guarded accessor trips while a window is open — the window
// brackets must enclose ALL grid writes and no reads — and that the grid
// stays usable after the recovered panic (the deferred EndWrites ran).
func TestGuardTripsInsideOwnWindow(t *testing.T) {
	g := NewUnit(8)
	g.SetShared(true)
	mustPanic(t, "Objects inside own write window", func() {
		g.BeginWrites()
		defer g.EndWrites()
		_ = g.Objects(0)
	})
	if g.Epoch() != 1 {
		t.Fatalf("epoch after recovered panic = %d, want 1", g.Epoch())
	}
	// ApplyBatch (self-bracketing) works when nobody reads mid-window.
	log, invalid := g.ApplyBatch([]model.Update{
		model.InsertUpdate(3, geom.Point{X: 0.1, Y: 0.2}),
	}, nil)
	if invalid != 0 || len(log) != 1 {
		t.Fatalf("ApplyBatch after guard trip: log %v invalid %d", log, invalid)
	}
}
