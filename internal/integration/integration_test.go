// Package integration cross-validates the three monitoring methods — CPM,
// YPK-CNN and SEA-CNN — against each other and against the brute-force
// oracle, over full network-workload simulations with object churn and
// moving queries. This is the repository's strongest end-to-end check: the
// paper's experimental claim is about cost, but only because all methods
// maintain exactly the same answers.
package integration

import (
	"fmt"
	"math"
	"testing"

	"cpm/internal/baseline"
	"cpm/internal/bruteforce"
	"cpm/internal/core"
	"cpm/internal/generator"
	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
	"cpm/internal/network"
)

type testbed struct {
	workload *generator.Workload
	monitors []model.Monitor
	oracle   *grid.Grid // a plain grid kept in sync as ground truth
	queries  []geom.Point
	k        int
}

func newTestbed(t *testing.T, seed int64, params generator.Params, gridSize, k int) *testbed {
	t.Helper()
	net, err := network.Generate(network.GenOptions{Width: 10, Height: 10, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	params.Seed = seed + 1000
	w, err := generator.New(net, params)
	if err != nil {
		t.Fatal(err)
	}
	objs := w.InitialObjects()

	tb := &testbed{
		workload: w,
		monitors: []model.Monitor{
			core.NewUnitEngine(gridSize, core.Options{}),
			baseline.NewUnitYPK(gridSize),
			baseline.NewUnitSEA(gridSize),
		},
		oracle: grid.NewUnit(gridSize),
		k:      k,
	}
	for id, p := range objs {
		if err := tb.oracle.Insert(id, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range tb.monitors {
		m.Bootstrap(objs)
	}
	tb.queries = w.InitialQueries()
	for i, q := range tb.queries {
		for _, m := range tb.monitors {
			if err := m.RegisterQuery(model.QueryID(i), q, k); err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
		}
	}
	return tb
}

// step advances the simulation one timestamp, feeding every monitor the
// same batch and mirroring it into the oracle grid.
func (tb *testbed) step(t *testing.T) {
	t.Helper()
	b := tb.workload.Advance()
	for _, u := range b.Objects {
		var err error
		switch u.Kind {
		case model.Move:
			_, _, err = tb.oracle.Move(u.ID, u.New)
		case model.Insert:
			err = tb.oracle.Insert(u.ID, u.New)
		case model.Delete:
			err = tb.oracle.Delete(u.ID)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, qu := range b.Queries {
		if qu.Kind == model.QueryMove {
			tb.queries[qu.ID] = qu.NewPoints[0]
		}
	}
	for _, m := range tb.monitors {
		m.ProcessBatch(b)
	}
}

// verify checks every query of every monitor against the oracle.
func (tb *testbed) verify(t *testing.T, ts int) {
	t.Helper()
	const eps = 1e-9
	for i, q := range tb.queries {
		want := bruteforce.TopK(tb.oracle, q, tb.k)
		for _, m := range tb.monitors {
			got := m.Result(model.QueryID(i))
			if len(got) != len(want) {
				t.Fatalf("ts %d %s q%d: got %d results, want %d\ngot  %v\nwant %v",
					ts, m.Name(), i, len(got), len(want), got, want)
			}
			for r := range got {
				if math.Abs(got[r].Dist-want[r].Dist) > eps {
					t.Fatalf("ts %d %s q%d rank %d: dist %v, want %v\ngot  %v\nwant %v",
						ts, m.Name(), i, r, got[r].Dist, want[r].Dist, got, want)
				}
			}
		}
	}
}

func TestAllMethodsAgreeDefaultMix(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		params := generator.Params{
			N: 400, NumQueries: 12,
			ObjectSpeed: generator.Medium, QuerySpeed: generator.Medium,
			ObjectAgility: 0.5, QueryAgility: 0.3,
		}
		tb := newTestbed(t, seed, params, 16, 4)
		for ts := 0; ts < 25; ts++ {
			tb.step(t)
			tb.verify(t, ts)
		}
	}
}

func TestAllMethodsAgreeFastChurn(t *testing.T) {
	params := generator.Params{
		N: 250, NumQueries: 8,
		ObjectSpeed: generator.Fast, QuerySpeed: generator.Fast,
		ObjectAgility: 1.0, QueryAgility: 1.0,
	}
	tb := newTestbed(t, 77, params, 12, 8)
	for ts := 0; ts < 25; ts++ {
		tb.step(t)
		tb.verify(t, ts)
	}
}

func TestAllMethodsAgreeStaticQueries(t *testing.T) {
	params := generator.Params{
		N: 300, NumQueries: 10,
		ObjectSpeed:   generator.Slow,
		ObjectAgility: 0.4, QueryAgility: 0,
	}
	tb := newTestbed(t, 5, params, 20, 2)
	for ts := 0; ts < 30; ts++ {
		tb.step(t)
		tb.verify(t, ts)
	}
}

func TestAllMethodsAgreeLargeK(t *testing.T) {
	params := generator.Params{
		N: 300, NumQueries: 5,
		ObjectSpeed: generator.Medium, QuerySpeed: generator.Medium,
		ObjectAgility: 0.6, QueryAgility: 0.4,
	}
	tb := newTestbed(t, 9, params, 8, 64)
	for ts := 0; ts < 15; ts++ {
		tb.step(t)
		tb.verify(t, ts)
	}
}

// TestCPMVariantsAgree runs the engine options (per-update ablation,
// dropped book-keeping) against the default engine on the same stream.
func TestCPMVariantsAgree(t *testing.T) {
	net, err := network.Generate(network.GenOptions{Width: 10, Height: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	w, err := generator.New(net, generator.Params{
		N: 300, NumQueries: 10,
		ObjectSpeed: generator.Medium, QuerySpeed: generator.Medium,
		ObjectAgility: 0.5, QueryAgility: 0.3, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	objs := w.InitialObjects()
	engines := []*core.Engine{
		core.NewUnitEngine(16, core.Options{}),
		core.NewUnitEngine(16, core.Options{PerUpdate: true}),
		core.NewUnitEngine(16, core.Options{DropBookkeeping: true}),
	}
	for _, e := range engines {
		e.Bootstrap(objs)
	}
	for i, q := range w.InitialQueries() {
		for _, e := range engines {
			if err := e.RegisterQuery(model.QueryID(i), q, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	for ts := 0; ts < 20; ts++ {
		b := w.Advance()
		for _, e := range engines {
			e.ProcessBatch(b)
		}
		ref := engines[0]
		for i := 0; i < 10; i++ {
			want := ref.Result(model.QueryID(i))
			for _, e := range engines[1:] {
				got := e.Result(model.QueryID(i))
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("ts %d q%d: variant diverged\ngot  %v\nwant %v", ts, i, got, want)
				}
			}
		}
	}
}

// TestCPMBeatsBaselinesOnCellAccesses asserts the paper's headline cost
// relationship on a live workload: CPM touches far fewer cells than either
// baseline for the same stream and identical results.
func TestCPMBeatsBaselinesOnCellAccesses(t *testing.T) {
	params := generator.Params{
		N: 500, NumQueries: 15,
		ObjectSpeed: generator.Medium, QuerySpeed: generator.Medium,
		ObjectAgility: 0.5, QueryAgility: 0.3,
	}
	tb := newTestbed(t, 21, params, 16, 4)
	base := make([]model.Stats, len(tb.monitors))
	for i, m := range tb.monitors {
		base[i] = m.Stats()
	}
	for ts := 0; ts < 30; ts++ {
		tb.step(t)
	}
	tb.verify(t, 30)
	acc := make([]int64, len(tb.monitors))
	for i, m := range tb.monitors {
		acc[i] = m.Stats().Sub(base[i]).CellAccesses
	}
	cpm, ypk, sea := acc[0], acc[1], acc[2]
	if cpm >= ypk {
		t.Errorf("CPM cell accesses %d not below YPK-CNN %d", cpm, ypk)
	}
	if cpm >= sea {
		t.Errorf("CPM cell accesses %d not below SEA-CNN %d", cpm, sea)
	}
	t.Logf("cell accesses over 30 cycles: CPM=%d YPK=%d SEA=%d", cpm, ypk, sea)
}
