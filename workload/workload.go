// Package workload exposes the repository's Brinkhoff-style moving-object
// workload generator (objects and queries traveling shortest paths over a
// synthetic road network) for use outside the benchmark harness: examples,
// demos and downstream evaluations of the cpm package.
//
// A workload is deterministic in its options: the same City and Params
// yield the identical update stream, so experiments are repeatable and
// methods comparable.
package workload

import (
	"cpm/internal/generator"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/network"
)

// Point is the workspace coordinate type; identical to cpm.Point (both
// alias the same underlying type, so values flow between the packages
// without conversion).
type Point = geom.Point

// Batch is one timestamp's updates; identical to cpm.Batch.
type Batch = model.Batch

// ObjectID identifies a moving object; identical to cpm.ObjectID.
type ObjectID = model.ObjectID

// Speed is a paper speed class: the network distance covered per timestamp.
type Speed = generator.Speed

// The speed classes of the paper's Table 6.1: slow covers 1/250 of the
// summed workspace extents per timestamp; medium and fast are 5× and 25×
// that.
const (
	Slow   = generator.Slow
	Medium = generator.Medium
	Fast   = generator.Fast
)

// CityOptions configure the synthetic road network. The zero value yields
// a 32×32-intersection city.
type CityOptions = network.GenOptions

// Params configure the moving-object stream: population, query count,
// speed classes, agilities and seed.
type Params = generator.Params

// DefaultParams returns the paper's Table 6.1 defaults scaled by scale
// (1.0 = N=100K objects, n=5K queries).
func DefaultParams(scale float64) Params { return generator.Defaults(scale) }

// Workload produces one update batch per timestamp over a generated city.
type Workload struct {
	w *generator.Workload
}

// New generates a city and a workload over it.
func New(city CityOptions, params Params) (*Workload, error) {
	g, err := network.Generate(city)
	if err != nil {
		return nil, err
	}
	w, err := generator.New(g, params)
	if err != nil {
		return nil, err
	}
	return &Workload{w: w}, nil
}

// InitialObjects spawns the population; feed the result to
// Monitor.Bootstrap. Call exactly once, before Advance.
func (w *Workload) InitialObjects() map[ObjectID]Point { return w.w.InitialObjects() }

// InitialQueries returns the starting location of query i at index i
// (register them under QueryID(i)).
func (w *Workload) InitialQueries() []Point { return w.w.InitialQueries() }

// Advance simulates one timestamp and returns its update batch.
func (w *Workload) Advance() Batch { return w.w.Advance() }

// ObjectCount returns the (constant) population size.
func (w *Workload) ObjectCount() int { return w.w.ObjectCount() }
