package workload_test

import (
	"testing"

	"cpm"
	"cpm/workload"
)

// TestWorkloadFeedsMonitor is the public-API round trip: generate a
// workload, feed it to a CPM monitor, watch results stay fresh.
func TestWorkloadFeedsMonitor(t *testing.T) {
	w, err := workload.New(
		workload.CityOptions{Width: 8, Height: 8, Seed: 3},
		workload.Params{
			N: 200, NumQueries: 5,
			ObjectSpeed: workload.Fast, QuerySpeed: workload.Medium,
			ObjectAgility: 0.5, QueryAgility: 0.3, Seed: 4,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := cpm.NewMonitor(cpm.Options{GridSize: 32})
	m.Bootstrap(w.InitialObjects())
	if m.ObjectCount() != 200 || w.ObjectCount() != 200 {
		t.Fatalf("population mismatch: monitor %d, workload %d", m.ObjectCount(), w.ObjectCount())
	}
	for i, q := range w.InitialQueries() {
		if err := m.RegisterQuery(cpm.QueryID(i), q, 3); err != nil {
			t.Fatal(err)
		}
	}
	for ts := 0; ts < 10; ts++ {
		m.Tick(w.Advance())
		for i := 0; i < 5; i++ {
			if got := m.Result(cpm.QueryID(i)); len(got) != 3 {
				t.Fatalf("ts %d q%d: %d results", ts, i, len(got))
			}
		}
	}
	if m.InvalidUpdates() != 0 {
		t.Fatalf("workload stream flagged invalid: %d", m.InvalidUpdates())
	}
}

func TestWorkloadErrors(t *testing.T) {
	if _, err := workload.New(workload.CityOptions{Width: 1, Height: 1}, workload.DefaultParams(0.001)); err == nil {
		t.Error("degenerate city accepted")
	}
	if _, err := workload.New(workload.CityOptions{Width: 8, Height: 8}, workload.Params{N: 0}); err == nil {
		t.Error("empty population accepted")
	}
}

func TestDefaultParamsPublic(t *testing.T) {
	p := workload.DefaultParams(0.01)
	if p.N != 1000 || p.NumQueries != 50 {
		t.Errorf("DefaultParams(0.01) = %+v", p)
	}
}
