# Local dev and CI run the same commands: .github/workflows/ci.yml invokes
# the same go invocations these targets wrap.

GO ?= go

.PHONY: all build test race bench bench-json bench-compare fmt fmt-check vet ci serve serve-smoke load-smoke cluster-smoke chaos-smoke trace-smoke fuzz

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-sensitive packages: the sharded monitor's fan-out, the conceptual
# partitioning it traverses, the engine it drives in parallel, the shared
# grid (whose epoch-guard assertions, including their negative-control
# tests, only compile under race/cpmassert builds), the notify
# pub/sub layer (incl. the root package's subscriber stress test), the
# network serving layer (wire codec, TCP server, reconnecting client),
# the cluster coordinator's fan-out/re-sync machinery, the chaos
# fault-injection layer (whose cluster suite hammers all of the above)
# and the tracing runtime (pooled spans finished from fan-out
# goroutines, the ring buffer scraped mid-flight).
race:
	$(GO) test -race . ./internal/shard/... ./internal/conc/... ./internal/core/... ./internal/grid/... ./internal/notify/... ./internal/wire/... ./internal/server/... ./client/... ./internal/metrics/... ./internal/load/... ./internal/cluster/... ./internal/chaos/... ./internal/tracing/...

# Host a self-driving CPM monitor on :7845; watch it with
#   go run ./cmd/cpmsim -connect 127.0.0.1:7845 -follow
serve:
	$(GO) run ./cmd/cpmserver -drive -addr :7845

# Loopback server round trip: a cpmserver hosting an empty monitor, a
# cpmsim -connect feeding and streaming it over TCP. CI runs this in the
# test job; it exercises the full binary path the tests mock with
# in-process listeners.
serve-smoke:
	@set -e; \
	$(GO) build -o /tmp/cpm-smoke-server ./cmd/cpmserver; \
	$(GO) build -o /tmp/cpm-smoke-sim ./cmd/cpmsim; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	/tmp/cpm-smoke-server -addr 127.0.0.1:17845 & srv=$$!; \
	sleep 1; \
	/tmp/cpm-smoke-sim -connect 127.0.0.1:17845 -n 2000 -queries 20 -ts 5 -watch 1; \
	kill $$srv; wait $$srv 2>/dev/null || true; \
	/tmp/cpm-smoke-server -addr 127.0.0.1:17846 & srv=$$!; \
	sleep 1; \
	/tmp/cpm-smoke-sim -connect 127.0.0.1:17846 -n 2000 -queries 20 -ts 3 -follow -watch 1; \
	kill $$srv; wait $$srv 2>/dev/null || true; \
	echo "serve-smoke: ok"

# Open-loop load smoke on loopback: a cpmserver with the metrics endpoint
# on, a short Poisson burst from cpmload, and a curl of /metrics. Writes
# LOAD_smoke.json (per-op p50/p99/p999 in the bench-report shape benchdiff
# gates); CI uploads it as the latency-trajectory artifact.
load-smoke:
	@set -e; \
	$(GO) build -o /tmp/cpm-load-server ./cmd/cpmserver; \
	$(GO) build -o /tmp/cpm-load-driver ./cmd/cpmload; \
	trap 'kill $$srv 2>/dev/null || true' EXIT; \
	/tmp/cpm-load-server -addr 127.0.0.1:17847 -metrics 127.0.0.1:19100 & srv=$$!; \
	sleep 1; \
	/tmp/cpm-load-driver -addr 127.0.0.1:17847 -conns 2 -rate 300 -duration 3s -n 500 -queries 20 -json LOAD_smoke.json -v; \
	if command -v curl >/dev/null; then \
		curl -sf 127.0.0.1:19100/metrics | head -5; \
	fi; \
	kill $$srv; wait $$srv 2>/dev/null || true; \
	echo "load-smoke: ok"

# Cluster round trip on loopback: two stock cpmserver workers, a cpmcoord
# sharding across them, then a cpmload burst and a cpmsim -connect -follow
# session against the coordinator — the full distributed binary path. The
# coordinator is restarted between the two phases (a fresh coordinator
# resets its workers at startup), which also smoke-tests coordinator
# restartability. CI runs this in the test job next to serve-smoke /
# load-smoke.
cluster-smoke:
	@set -e; \
	$(GO) build -o /tmp/cpm-cluster-server ./cmd/cpmserver; \
	$(GO) build -o /tmp/cpm-cluster-coord ./cmd/cpmcoord; \
	$(GO) build -o /tmp/cpm-cluster-load ./cmd/cpmload; \
	$(GO) build -o /tmp/cpm-cluster-sim ./cmd/cpmsim; \
	trap 'kill $$w1 $$w2 $$co 2>/dev/null || true' EXIT; \
	/tmp/cpm-cluster-server -addr 127.0.0.1:17848 & w1=$$!; \
	/tmp/cpm-cluster-server -addr 127.0.0.1:17849 & w2=$$!; \
	sleep 1; \
	/tmp/cpm-cluster-coord -addr 127.0.0.1:17850 -metrics 127.0.0.1:19101 \
		-workers 127.0.0.1:17848,127.0.0.1:17849 & co=$$!; \
	sleep 1; \
	/tmp/cpm-cluster-load -addr 127.0.0.1:17850 -conns 2 -rate 200 -duration 3s -n 500 -queries 20 -v; \
	kill $$co; wait $$co 2>/dev/null || true; \
	/tmp/cpm-cluster-coord -addr 127.0.0.1:17850 -metrics 127.0.0.1:19101 \
		-workers 127.0.0.1:17848,127.0.0.1:17849 & co=$$!; \
	sleep 1; \
	/tmp/cpm-cluster-sim -connect 127.0.0.1:17850 -n 1000 -queries 10 -ts 3 -follow -watch 1; \
	if command -v curl >/dev/null; then \
		curl -sf 127.0.0.1:19101/metrics | grep -E '^cpm_coord_(workers|workers_synced) ' ; \
	fi; \
	kill $$co $$w1 $$w2; wait $$co $$w1 $$w2 2>/dev/null || true; \
	echo "cluster-smoke: ok"

# Full-binary failure drill: a cpmcoord whose link to one worker runs
# through a cpmchaos proxy replaying a seeded fault schedule (latency,
# then a reset storm) while cpmload drives traffic. Asserts the drill
# completes and the coordinator's metrics page is alive afterwards; the
# strong never-silently-wrong assertions live in the in-process chaos
# suite (internal/cluster/chaos_test.go), which this target runs first.
chaos-smoke:
	@set -e; \
	$(GO) test -count=1 -run 'TestChaos' ./internal/cluster/; \
	$(GO) build -o /tmp/cpm-chaos-server ./cmd/cpmserver; \
	$(GO) build -o /tmp/cpm-chaos-proxy ./cmd/cpmchaos; \
	$(GO) build -o /tmp/cpm-chaos-coord ./cmd/cpmcoord; \
	$(GO) build -o /tmp/cpm-chaos-load ./cmd/cpmload; \
	trap 'kill $$w1 $$w2 $$px $$co 2>/dev/null || true' EXIT; \
	/tmp/cpm-chaos-server -addr 127.0.0.1:17851 & w1=$$!; \
	/tmp/cpm-chaos-server -addr 127.0.0.1:17852 & w2=$$!; \
	sleep 1; \
	/tmp/cpm-chaos-proxy -addr 127.0.0.1:17853 -target 127.0.0.1:17851 -seed 42 \
		-schedule '1s+2s:latency=30ms~20ms, 4s+1s:reset=0.3' & px=$$!; \
	sleep 1; \
	/tmp/cpm-chaos-coord -addr 127.0.0.1:17854 -metrics 127.0.0.1:19102 -op-timeout 1s \
		-workers 127.0.0.1:17853,127.0.0.1:17852 & co=$$!; \
	sleep 1; \
	/tmp/cpm-chaos-load -addr 127.0.0.1:17854 -conns 2 -rate 150 -duration 7s -n 500 -queries 20 -v; \
	if command -v curl >/dev/null; then \
		curl -sf 127.0.0.1:19102/metrics | grep -E '^cpm_coord_(workers|worker_desyncs_total|op_retries_total|resyncs_total) '; \
	fi; \
	kill $$co $$px $$w1 $$w2; wait $$co $$px $$w1 $$w2 2>/dev/null || true; \
	echo "chaos-smoke: ok"

# Tracing smoke on the full distributed binary path: a coordinator over
# two workers with head sampling at 1, a traced cpmload burst, then a
# curl of /debug/traces asserting a multi-hop tick trace — coordinator
# fan-out spans for both workers plus the merge — actually landed in the
# flight recorder. See docs/TRACING.md.
trace-smoke:
	@set -e; \
	$(GO) build -o /tmp/cpm-trace-server ./cmd/cpmserver; \
	$(GO) build -o /tmp/cpm-trace-coord ./cmd/cpmcoord; \
	$(GO) build -o /tmp/cpm-trace-load ./cmd/cpmload; \
	trap 'kill $$w1 $$w2 $$co 2>/dev/null || true' EXIT; \
	/tmp/cpm-trace-server -addr 127.0.0.1:17855 & w1=$$!; \
	/tmp/cpm-trace-server -addr 127.0.0.1:17856 & w2=$$!; \
	sleep 1; \
	/tmp/cpm-trace-coord -addr 127.0.0.1:17857 -metrics 127.0.0.1:19103 \
		-workers 127.0.0.1:17855,127.0.0.1:17856 -trace-sample 1 & co=$$!; \
	sleep 1; \
	/tmp/cpm-trace-load -addr 127.0.0.1:17857 -conns 2 -rate 150 -duration 3s -n 500 -queries 20 -trace -trace-top 3; \
	if command -v curl >/dev/null; then \
		traces=$$(curl -sf 127.0.0.1:19103/debug/traces); \
		for want in '"name":"tick"' '"name":"worker0"' '"name":"worker1"' '"name":"merge"'; do \
			echo "$$traces" | grep -q "$$want" || { echo "trace-smoke: $$want missing from /debug/traces" >&2; exit 1; }; \
		done; \
	fi; \
	kill $$co $$w1 $$w2; wait $$co $$w1 $$w2 2>/dev/null || true; \
	echo "trace-smoke: ok"

# Short fuzz runs over the wire codec (the seed corpus is checked in).
fuzz:
	$(GO) test -fuzz=FuzzFrame -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzEventRoundTrip -fuzztime=30s ./internal/wire/

# One iteration of every benchmark — keeps benchmark code compiling and
# running without paying for a full measurement. -benchmem mirrors the CI
# smoke step so allocs/op and B/op are always visible locally.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./...

# Machine-readable method comparison for trajectory tracking. The report
# carries mallocs/alloc_bytes next to the ns timings (cpmbench measures
# allocation deltas around each method run), so local JSON runs feed the
# same alloc columns the CI gate watches.
bench-json:
	$(GO) run ./cmd/cpmbench -exp none -scale 0.01 -ts 5 -json BENCH_local.json

# Local mirror of the CI bench-trajectory gate: run the method comparison
# and diff it against a saved baseline, failing on a >25% regression in any
# time or allocation column.
#
#	make bench-json && cp BENCH_local.json BENCH_baseline.json
#	... hack hack hack ...
#	make bench-compare BASELINE=BENCH_baseline.json
bench-compare:
	@test -n "$(BASELINE)" || { echo "usage: make bench-compare BASELINE=path/to/BENCH_x.json" >&2; exit 2; }
	$(GO) run ./cmd/cpmbench -exp none -scale 0.01 -ts 5 -json BENCH_local.json
	$(GO) run ./cmd/benchdiff -baseline $(BASELINE) -current BENCH_local.json -threshold 0.25

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench
