# Local dev and CI run the same commands: .github/workflows/ci.yml invokes
# the same go invocations these targets wrap.

GO ?= go

.PHONY: all build test race bench bench-json fmt fmt-check vet ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-sensitive packages: the sharded monitor's fan-out, the conceptual
# partitioning it traverses, and the engine it drives in parallel.
race:
	$(GO) test -race ./internal/shard/... ./internal/conc/... ./internal/core/...

# One iteration of every benchmark — keeps benchmark code compiling and
# running without paying for a full measurement.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Machine-readable method comparison for trajectory tracking.
bench-json:
	$(GO) run ./cmd/cpmbench -exp none -scale 0.01 -ts 5 -json BENCH_local.json

fmt:
	gofmt -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt-check vet build test race bench
