// Package cpm is a from-scratch Go implementation of Conceptual
// Partitioning Monitoring (CPM) — the continuous k nearest neighbor
// monitoring method of Mouratidis, Hadjieleftheriou and Papadias, SIGMOD
// 2005 — together with the grid substrate, the YPK-CNN and SEA-CNN
// baselines it was evaluated against, an aggregate/constrained NN
// extension, and a Brinkhoff-style network workload generator.
//
// The central type is Monitor: it owns an in-memory grid index over moving
// objects and keeps the results of any number of continuous queries exact
// while object and query location updates stream in.
//
//	m := cpm.NewMonitor(cpm.Options{GridSize: 128})
//	m.Bootstrap(initialPositions)                  // load the object population
//	m.RegisterQuery(1, cpm.Point{X: .2, Y: .7}, 8) // monitor the 8 NNs of a point
//	for batch := range updateStream {
//		m.Tick(batch)                  // one processing cycle
//		_ = m.Result(1)                // always current
//	}
//
// Results can also be pushed instead of polled: Subscribe returns a typed
// stream of per-query result diffs (entered/exited/re-ranked neighbors
// plus the full new result) delivered over a channel, with per-subscriber
// buffering and slow-consumer policies. See Subscribe and the README's
// "Streaming results" section.
//
// Aggregate queries (sum/min/max over several query points, Section 5 of
// the paper) and constrained queries (results restricted to a region) are
// registered with RegisterAggQuery and RegisterConstrainedQuery; everything
// else works identically.
//
// CPM's efficiency comes from processing only the updates that fall inside
// some query's influence region and from visiting, on any search, the
// provably minimal set of grid cells, ordered by a conceptual partitioning
// of the space around the query. See DESIGN.md for the architecture and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
package cpm

import (
	"errors"
	"time"

	"cpm/internal/baseline"
	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/notify"
	"cpm/internal/shard"
)

var (
	errRangeMove = errors.New("cpm: a range query moves with exactly one point")
	errGridSize  = errors.New("cpm: rebalance needs a positive grid size")
)

// Point is a location in the two-dimensional workspace.
type Point = geom.Point

// Rect is an axis-aligned rectangle, used for workspaces and constraint
// regions.
type Rect = geom.Rect

// ObjectID identifies a moving data object. Use dense small non-negative
// integers: object state is stored in arrays indexed by id.
type ObjectID = model.ObjectID

// QueryID identifies an installed continuous query.
type QueryID = model.QueryID

// Neighbor is one result entry: an object and its (aggregate) distance.
type Neighbor = model.Neighbor

// Update is one element of the object location stream.
type Update = model.Update

// QueryUpdate is one element of the query stream (moves and terminations).
type QueryUpdate = model.QueryUpdate

// Batch carries the updates of one processing cycle.
type Batch = model.Batch

// Stats holds cumulative work counters (cell accesses, heap operations,
// re-computations, …).
type Stats = model.Stats

// Agg selects the aggregate function of an aggregate NN query.
type Agg = geom.Agg

// Aggregate functions for RegisterAggQuery.
const (
	AggSum = geom.AggSum // minimize the total travel distance
	AggMin = geom.AggMin // closest object to any query point
	AggMax = geom.AggMax // minimize the farthest user's distance
)

// Stream constructors, re-exported for building Batch values.
var (
	// MoveUpdate builds the canonical update tuple <id, old, new>.
	MoveUpdate = model.MoveUpdate
	// InsertUpdate builds an object-appearance update.
	InsertUpdate = model.InsertUpdate
	// DeleteUpdate builds an object-disappearance update.
	DeleteUpdate = model.DeleteUpdate
)

// Query update kinds.
const (
	QueryMove      = model.QueryMove
	QueryInstall   = model.QueryInstall
	QueryTerminate = model.QueryTerminate
)

// Update kinds.
const (
	Move   = model.Move
	Insert = model.Insert
	Delete = model.Delete
)

// ResultDiff describes how one query's result changed: entered, exited and
// re-ranked neighbors plus the full new result set. See Subscribe.
type ResultDiff = model.ResultDiff

// DiffKind classifies a result-diff event.
type DiffKind = model.DiffKind

// Result-diff kinds.
const (
	DiffUpdate  = model.DiffUpdate  // an installed query's result changed
	DiffInstall = model.DiffInstall // a query was installed; Entered is the initial result
	DiffRemove  = model.DiffRemove  // a query was terminated; Result is nil
)

// ResultEvent is one delivered result diff with its hub sequence number.
type ResultEvent = notify.Event

// Subscription is a handle on a stream of ResultEvents; consume Events()
// from any goroutine and Close() to unsubscribe.
type Subscription = notify.Subscription

// SubscribeOptions configure a subscription's buffering and slow-consumer
// policy.
type SubscribeOptions = notify.Options

// SlowConsumerPolicy selects what happens when a subscriber's buffer fills.
type SlowConsumerPolicy = notify.Policy

// DefaultBuffer is the per-subscriber buffer capacity when
// SubscribeOptions.Buffer is unset.
const DefaultBuffer = notify.DefaultBuffer

// Slow-consumer policies for SubscribeOptions.
const (
	// DropOldest discards the oldest buffered event (detectable via
	// Event.Seq gaps and Subscription.Dropped).
	DropOldest = notify.DropOldest
	// CoalesceLatest keeps only the newest pending event per query.
	CoalesceLatest = notify.CoalesceLatest
)

// UnitSquare is the canonical workspace.
var UnitSquare = Rect{Lo: Point{X: 0, Y: 0}, Hi: Point{X: 1, Y: 1}}

// Options configure a Monitor. The zero value gets a 128×128 grid (the
// sweet spot of the paper's Figure 6.1) over the unit square.
type Options struct {
	// GridSize is the number of cells per dimension (cell side δ =
	// workspace extent / GridSize). Default 128.
	GridSize int
	// Workspace is the indexed square area. Default the unit square.
	// Object positions outside it are clamped onto its border before
	// storage (so every stored position lies inside its grid cell — the
	// invariant mindist-based search pruning needs); distances are
	// computed from the clamped position. Query points are never clamped.
	Workspace Rect
	// PerUpdate disables batched update handling (ablation; Section 3.2
	// semantics). Leave false for production use.
	PerUpdate bool
	// DropBookkeeping trades update-handling speed for memory: the
	// per-query search heap and visit list are discarded after every
	// search, and affected queries recompute from scratch (the paper's
	// memory-pressure fallback).
	DropBookkeeping bool
	// Shards runs the monitor as N hash-partitioned worker shards: every
	// Tick applies the object stream once to one shared epoch-guarded
	// grid, fans the resulting write log out to one goroutine per shard
	// and merges the results, parallelizing the per-query monitoring work
	// across cores. Results, change notifications and work counters are
	// exactly those of the single-engine monitor, and memory stays
	// O(objects) — the grid is shared, not replicated. 0 or 1 keeps the
	// single-engine path. Useful from a few hundred queries up on a
	// multi-core machine; see internal/shard's BenchmarkTick.
	Shards int
	// ScanWorkers additionally parallelizes each shard's influence-scan
	// phase WITHIN the shard: queries are partitioned into ScanWorkers
	// groups by home cell and the write log is scanned by a small
	// persistent worker pool, one goroutine per group. Useful for
	// update-heavy workloads whose scan phase dominates even after
	// sharding (or with Shards <= 1 on a multi-core machine). Values < 2
	// keep the serial scan. Results are unaffected.
	ScanWorkers int

	// AutoRebalance resizes the grid online as the object density drifts,
	// instead of freezing the cell side δ at construction: at every
	// RebalanceCheckEvery-th Tick the monitor reads the mean occupancy of
	// non-empty cells and, when it has drifted past a hysteresis band
	// around TargetObjectsPerCell, rebuilds the grid at the size that
	// restores the target — reinstalling all query book-keeping without
	// recomputing a single result (results are δ-independent). With
	// Shards > 1 the shared grid is rebuilt once between ticks and every
	// shard reindexes in parallel, so the merged streams stay exact. See
	// the README's "Online grid rebalancing" design note.
	AutoRebalance bool
	// TargetObjectsPerCell is the occupancy the rebalancing policy steers
	// toward. Default 8.
	TargetObjectsPerCell float64
	// RebalanceCheckEvery is the policy cadence in Ticks. Default 16.
	RebalanceCheckEvery int
}

func (o *Options) defaults() {
	if o.GridSize == 0 {
		o.GridSize = 128
	}
	if o.Workspace == (Rect{}) {
		o.Workspace = UnitSquare
	}
}

// backend is the method set shared by the single engine and the sharded
// monitor; Monitor delegates to whichever Options selected. It embeds the
// cross-method model.Monitor contract and adds the CPM-only surface.
type backend interface {
	model.Monitor
	Register(id QueryID, def core.Def) error
	RegisterRange(id QueryID, center Point, radius float64) error
	IsRange(id QueryID) bool
	MoveQuery(id QueryID, points []Point) error
	MoveRange(id QueryID, center Point) error
	RangeResult(id QueryID) []Neighbor
	BestDist(id QueryID) float64
	ObjectPosition(id ObjectID) (Point, bool)
	ObjectCount() int
	ChangedQueries() []QueryID
	QueryIDs() []QueryID
	HasQuery(id QueryID) bool
	InvalidUpdates() int64
	MemoryFootprint() int64
	GridEpoch() int64
	LastPhases() model.PhaseNanos
	EnableDiffs(on bool)
	TakeDiffs() []model.ResultDiff
	Rebalance(newSize int)
	GridSize() int
	Rebalances() int64
}

var (
	_ backend = (*core.Engine)(nil)
	_ backend = (*shard.Monitor)(nil)
)

// Monitor continuously maintains the results of registered queries over a
// stream of object location updates, using the CPM algorithm.
//
// Monitor is not safe for concurrent use: the paper's setting is a single
// processing loop consuming a stream, and that is the supported model.
// Wrap it in a mutex if updates and reads come from different goroutines.
// (With Options.Shards > 1 each Tick parallelizes internally, but the
// external contract is unchanged: one caller at a time.) The exception is
// the event streams returned by Subscribe: their channels may be consumed
// from any number of goroutines while the processing loop runs.
type Monitor struct {
	e backend
	// opts are the construction options, kept so Reset can rebuild the
	// backend from scratch.
	opts Options
	// hub delivers result diffs to subscribers; nil until the first
	// Subscribe call, so unsubscribed monitors pay nothing for streaming.
	hub *notify.Hub
	// keep makes publish() additionally buffer every diff for TakeDiffs —
	// the pull-based collection path of the cluster serving layer.
	keep bool
	// pending holds the diffs collected since the last TakeDiffs while
	// keep is on.
	pending []ResultDiff
	// closed is set by Close: later Subscribe calls get an already-closed
	// subscription instead of racing the draining hub.
	closed bool
	// Cycle accounting, maintained by Tick for observability consumers
	// (same single-caller contract as everything else on the monitor).
	cycles      int64
	cycleNs     int64
	lastCycleNs int64
}

// newBackend builds the engine Options select: a single engine, or — with
// Shards > 1 or AutoRebalance — the sharded monitor. opts must already
// have defaults applied.
func newBackend(opts Options) backend {
	copts := core.Options{
		PerUpdate:       opts.PerUpdate,
		DropBookkeeping: opts.DropBookkeeping,
		ScanWorkers:     opts.ScanWorkers,
	}
	if opts.Shards > 1 || opts.AutoRebalance {
		// The auto-rebalancing policy lives in the sharded monitor (it is
		// the layer that coordinates the resize across replicas); with one
		// shard it is a thin pass-through around a single engine.
		n := opts.Shards
		if n < 1 {
			n = 1
		}
		s := shard.New(n, opts.GridSize, opts.Workspace, copts)
		if opts.AutoRebalance {
			s.SetAutoRebalance(shard.AutoRebalance{
				Enabled:              true,
				TargetObjectsPerCell: opts.TargetObjectsPerCell,
				CheckEvery:           opts.RebalanceCheckEvery,
			})
		}
		return s
	}
	return core.NewEngine(opts.GridSize, opts.Workspace, copts)
}

// NewMonitor creates a CPM monitor: a single engine, or — with
// Options.Shards > 1 — a sharded monitor that partitions the queries
// across parallel worker shards with identical results.
func NewMonitor(opts Options) *Monitor {
	opts.defaults()
	return &Monitor{e: newBackend(opts), opts: opts}
}

// Bootstrap loads the initial object population. Call once, before
// registering queries or processing updates.
func (m *Monitor) Bootstrap(objs map[ObjectID]Point) { m.e.Bootstrap(objs) }

// RegisterQuery installs a conventional k-NN query at q and computes its
// initial result.
func (m *Monitor) RegisterQuery(id QueryID, q Point, k int) error {
	err := m.e.RegisterQuery(id, q, k)
	m.publish()
	return err
}

// RegisterAggQuery installs an aggregate k-NN query: it monitors the k
// objects minimizing agg over the distances to every point in pts.
func (m *Monitor) RegisterAggQuery(id QueryID, pts []Point, k int, agg Agg) error {
	err := m.e.Register(id, core.AggQuery(pts, k, agg))
	m.publish()
	return err
}

// RegisterConstrainedQuery installs a k-NN query whose results are
// restricted to objects inside region (paper Figure 5.3).
func (m *Monitor) RegisterConstrainedQuery(id QueryID, q Point, k int, region Rect) error {
	def := core.PointQuery(q, k)
	def.Constraint = &region
	err := m.e.Register(id, def)
	m.publish()
	return err
}

// RegisterRangeQuery installs a continuous range query: it continuously
// reports every object within radius of center. Range monitoring shares
// the grid and influence-list machinery with k-NN monitoring but needs no
// search state at all (see internal/core's range module).
func (m *Monitor) RegisterRangeQuery(id QueryID, center Point, radius float64) error {
	err := m.e.RegisterRange(id, center, radius)
	m.publish()
	return err
}

// MoveQuery relocates an installed query; pass one point per original
// query point (exactly one for conventional, constrained and range
// queries).
func (m *Monitor) MoveQuery(id QueryID, to ...Point) error {
	var err error
	if m.e.IsRange(id) {
		if len(to) != 1 {
			return errRangeMove
		}
		err = m.e.MoveRange(id, to[0])
	} else {
		err = m.e.MoveQuery(id, to)
	}
	m.publish()
	return err
}

// RemoveQuery uninstalls a query. Unknown ids are a no-op.
func (m *Monitor) RemoveQuery(id QueryID) {
	m.e.RemoveQuery(id)
	m.publish()
}

// Tick runs one processing cycle over a batch of object and query updates.
// Feed at most one update per object per batch (the stream model of the
// paper); the engine tolerates more but may fall back to re-computation.
func (m *Monitor) Tick(b Batch) {
	start := time.Now()
	m.e.ProcessBatch(b)
	m.publish()
	ns := time.Since(start).Nanoseconds()
	m.cycles++
	m.cycleNs += ns
	m.lastCycleNs = ns
}

// Cycles returns how many Tick cycles the monitor has processed.
func (m *Monitor) Cycles() int64 { return m.cycles }

// CycleNanos returns the total wall time spent inside Tick, in
// nanoseconds.
func (m *Monitor) CycleNanos() int64 { return m.cycleNs }

// LastCycleNanos returns the wall time of the most recent Tick, in
// nanoseconds (0 before the first).
func (m *Monitor) LastCycleNanos() int64 { return m.lastCycleNs }

// PhaseNanos is the cost-model phase decomposition of one cycle; see
// model.PhaseNanos.
type PhaseNanos = model.PhaseNanos

// LastPhases returns the wall-clock decomposition of the most recent Tick
// into the paper's Section 4 cost-model phases: index maintenance
// (relocation), influence scan / query re-evaluation, query-update
// application, and diff derivation. With Shards > 1 each phase reports
// the slowest shard (critical path). Zero before the first cycle.
func (m *Monitor) LastPhases() PhaseNanos { return m.e.LastPhases() }

// QueryCount returns the number of currently installed queries.
func (m *Monitor) QueryCount() int { return len(m.e.QueryIDs()) }

// InsertObject adds a single new object immediately (a one-update cycle).
func (m *Monitor) InsertObject(id ObjectID, p Point) {
	m.e.ProcessBatch(Batch{Objects: []Update{InsertUpdate(id, p)}})
	m.publish()
}

// MoveObject relocates a single object immediately (a one-update cycle).
func (m *Monitor) MoveObject(id ObjectID, to Point) {
	old, _ := m.e.ObjectPosition(id)
	m.e.ProcessBatch(Batch{Objects: []Update{MoveUpdate(id, old, to)}})
	m.publish()
}

// DeleteObject removes a single object immediately (a one-update cycle).
func (m *Monitor) DeleteObject(id ObjectID) {
	old, _ := m.e.ObjectPosition(id)
	m.e.ProcessBatch(Batch{Objects: []Update{DeleteUpdate(id, old)}})
	m.publish()
}

// Result returns the current result of a query of either kind — the k
// best neighbors of a k-NN query, or all members of a range query —
// ordered by (distance, id). The caller owns the slice. Unknown ids yield
// nil.
func (m *Monitor) Result(id QueryID) []Neighbor {
	if m.e.IsRange(id) {
		return m.e.RangeResult(id)
	}
	return m.e.Result(id)
}

// BestDist returns the query's current best_dist: the distance of its kth
// neighbor, +Inf while fewer than k objects match.
func (m *Monitor) BestDist(id QueryID) float64 { return m.e.BestDist(id) }

// QuerySnapshot pairs a query id with its full current result, as captured
// by Monitor.Snapshot.
type QuerySnapshot struct {
	// Query is the snapshotted query.
	Query QueryID
	// Live reports whether the query is currently installed. Snapshotting
	// an unknown (for example, meanwhile-terminated) id yields Live false
	// and a nil Result, so re-syncing consumers learn about terminations
	// they missed.
	Live bool
	// Result is the query's full current result, ordered by (distance,
	// id). The caller owns the slice.
	Result []Neighbor
}

// Snapshot captures the current full result of each given query — of every
// installed query, in ascending id order, when called with no ids — as one
// consistent set: no processing cycle runs between the individual reads.
// It is the re-sync primitive of the network serving layer: a reconnecting
// subscriber receives a Snapshot of its queries and resumes the live diff
// stream from there (see the client package), but it is equally useful for
// any consumer that needs a multi-query view at one logical instant.
func (m *Monitor) Snapshot(ids ...QueryID) []QuerySnapshot {
	if len(ids) == 0 {
		ids = m.e.QueryIDs()
	}
	out := make([]QuerySnapshot, len(ids))
	for i, id := range ids {
		out[i] = QuerySnapshot{Query: id, Live: m.e.HasQuery(id), Result: m.Result(id)}
	}
	return out
}

// Rebalance re-partitions the grid into gridSize×gridSize cells online,
// migrating the object store and reinstalling every installed query's
// index book-keeping without recomputing any result: answers are
// δ-independent, only the index is not, so results, reported snapshots and
// the diff stream are untouched. With Shards > 1 the shared grid is
// rebuilt once and every shard reindexes its own queries in parallel.
// Like every other method it must be called from the processing
// loop, between Ticks. Most callers want Options.AutoRebalance instead.
func (m *Monitor) Rebalance(gridSize int) error {
	if gridSize <= 0 {
		return errGridSize
	}
	m.e.Rebalance(gridSize)
	return nil
}

// GridSize returns the current number of grid cells per dimension — a
// runtime property once rebalancing is on.
func (m *Monitor) GridSize() int { return m.e.GridSize() }

// Rebalances returns how many online grid resizes the monitor has
// performed (manual and automatic).
func (m *Monitor) Rebalances() int64 { return m.e.Rebalances() }

// ObjectPosition returns the current position of a live object.
func (m *Monitor) ObjectPosition(id ObjectID) (Point, bool) {
	return m.e.ObjectPosition(id)
}

// ObjectCount returns the number of live objects.
func (m *Monitor) ObjectCount() int { return m.e.ObjectCount() }

// ChangedQueries returns the ids of queries whose results changed since
// the last Tick began — the per-cycle client notification set of the
// paper's monitoring loop (Figure 3.9). Installations, moves and
// terminations count as changes. The ids are in ascending order on both
// the single-engine and the sharded path, so downstream consumers never
// depend on shard interleaving.
func (m *Monitor) ChangedQueries() []QueryID { return m.e.ChangedQueries() }

// Subscribe returns a push-based stream of result-diff events for the
// given queries (none subscribes to every query, like SubscribeAll) with
// default options: a DefaultBuffer-event buffer and the DropOldest
// slow-consumer policy.
//
// Events describe every change from the moment of subscription on —
// installations, per-cycle result changes (entered / exited / re-ranked
// neighbors plus the full new result), query moves and terminations — in
// the order they were reported; for the current state of queries installed
// before subscribing, poll Result once after subscribing. Like every other
// Monitor method, Subscribe must be called from the processing-loop
// goroutine; the returned subscription's channel may be consumed from any
// goroutine. Delivery never blocks the processing loop: slow consumers
// lose events according to their policy instead.
func (m *Monitor) Subscribe(ids ...QueryID) *Subscription {
	return m.SubscribeWith(SubscribeOptions{}, ids...)
}

// SubscribeAll subscribes to every query with default options.
func (m *Monitor) SubscribeAll() *Subscription { return m.SubscribeWith(SubscribeOptions{}) }

// SubscribeWith is Subscribe with explicit buffering and slow-consumer
// policy.
func (m *Monitor) SubscribeWith(opts SubscribeOptions, ids ...QueryID) *Subscription {
	if m.closed {
		// After Close the hub is draining (or gone): hand out an already-
		// closed subscription instead of racing it with a fresh hub.
		return notify.Closed()
	}
	if m.hub == nil {
		m.hub = notify.NewHub()
		m.e.EnableDiffs(true)
	}
	return m.hub.Subscribe(opts, ids...)
}

// Close releases the monitor's background resources: streaming delivery
// shuts down (every subscription's buffered events drain and its Events
// channel closes, and diff collection stops), and a sharded monitor's
// persistent worker goroutines stop. The monitor itself stays usable for
// polling — Result and ChangedQueries continue to work, and a later Tick
// restarts the shard workers — but streaming is over for good: a Subscribe
// after Close returns an already-closed subscription (its Events channel
// is closed) rather than racing the draining hub.
func (m *Monitor) Close() {
	m.closed = true
	if c, ok := m.e.(interface{ Close() }); ok {
		c.Close()
	}
	if m.hub == nil {
		return
	}
	m.hub.Close()
	m.hub = nil
	m.e.EnableDiffs(false)
}

// KeepDiffs toggles pull-based diff collection: while on, every mutating
// operation's result diffs are additionally buffered for TakeDiffs — with
// or without subscribers. The network serving layer uses this to answer
// sync-diffs requests (each operation's diffs returned to the requester)
// deterministically, independent of the push path's goroutines. Turning it
// off discards anything pending.
func (m *Monitor) KeepDiffs(on bool) {
	m.keep = on
	if on {
		m.e.EnableDiffs(true)
		return
	}
	m.pending = nil
	if m.hub == nil {
		m.e.EnableDiffs(false)
	}
}

// TakeDiffs returns the diffs collected since the last TakeDiffs call and
// clears the buffer. Nil unless KeepDiffs is on.
func (m *Monitor) TakeDiffs() []ResultDiff {
	out := m.pending
	m.pending = nil
	return out
}

// Reset wipes the monitor back to its just-constructed state: every query
// is removed (publishing the terminal DiffRemove events to collectors and
// subscribers), the object population is discarded, and Bootstrap may be
// called again. Cycle counters are cumulative observability data and are
// not reset. The cluster coordinator uses this to re-sync a worker whose
// state is unknown (restarted, or missed batches beyond the replay
// window) before re-bootstrapping it.
func (m *Monitor) Reset() {
	for _, id := range m.e.QueryIDs() {
		m.e.RemoveQuery(id)
	}
	m.publish()
	if c, ok := m.e.(interface{ Close() }); ok {
		c.Close() // stop a sharded backend's worker goroutines
	}
	m.e = newBackend(m.opts)
	if m.hub != nil || m.keep {
		m.e.EnableDiffs(true)
	}
}

// publish flushes the diffs of the last mutating operation to the
// subscribers and, with KeepDiffs on, the pull buffer. No-op (and no diff
// is ever collected) while neither is active.
func (m *Monitor) publish() {
	if m.hub == nil && !m.keep {
		return
	}
	diffs := m.e.TakeDiffs()
	if m.keep {
		m.pending = append(m.pending, diffs...)
	}
	if m.hub != nil {
		m.hub.Publish(diffs)
	}
}

// Stats returns cumulative work counters.
func (m *Monitor) Stats() Stats { return m.e.Stats() }

// InvalidUpdates reports how many stream elements were dropped as
// inconsistent (unknown ids, duplicate inserts, …).
func (m *Monitor) InvalidUpdates() int64 { return m.e.InvalidUpdates() }

// MemoryFootprint estimates the monitor's size in the abstract memory
// units of the paper's Section 4.1 (one unit per stored number). With
// Shards > 1 the grid term is counted once — the grid is shared — so the
// footprint matches the single-engine monitor's for the same workload.
func (m *Monitor) MemoryFootprint() int64 { return m.e.MemoryFootprint() }

// GridEpoch returns the grid's write epoch: the number of write batches
// (bootstraps, per-Tick object-stream applications, rebuilds) applied to
// the index so far. With Shards > 1 all shards read the one shared grid at
// a stable epoch during each Tick's fan-out; the counter is exposed for
// observability (the cpm_grid_epoch gauge).
func (m *Monitor) GridEpoch() int64 { return m.e.GridEpoch() }

// Method is the interface shared by CPM and the baseline monitors, for
// side-by-side comparison. All implementations produce identical results
// on identical streams; they differ in cost.
type Method = model.Monitor

// NewYPKMonitor creates a YPK-CNN baseline monitor (single-point k-NN
// queries only), for comparative benchmarking.
func NewYPKMonitor(opts Options) Method {
	opts.defaults()
	return baseline.NewYPK(opts.GridSize, opts.Workspace)
}

// NewSEAMonitor creates a SEA-CNN baseline monitor (single-point k-NN
// queries only), for comparative benchmarking.
func NewSEAMonitor(opts Options) Method {
	opts.defaults()
	return baseline.NewSEA(opts.GridSize, opts.Workspace)
}
