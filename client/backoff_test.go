package client

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cpm"
	"cpm/internal/server"
)

// ceilFor is the un-jittered exponential ceiling of attempt n (1-based).
func ceilFor(base, max time.Duration, attempt int) time.Duration {
	c := base
	for i := 1; i < attempt && c < max; i++ {
		c *= 2
	}
	if c > max {
		c = max
	}
	return c
}

// TestBackoffDelaySchedule pins the full-jitter schedule: every draw lies
// in (0, min(base·2^(n-1), max)], the ceiling stops doubling at max, and
// the draws actually vary (a degenerate constant schedule would defeat
// the desynchronization this exists for).
func TestBackoffDelaySchedule(t *testing.T) {
	const base, max = 50 * time.Millisecond, 2 * time.Second
	rng := rand.New(rand.NewSource(1))
	for attempt := 1; attempt <= 12; attempt++ {
		ceil := ceilFor(base, max, attempt)
		seen := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			d := backoffDelay(rng, base, max, attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, ceil)
			}
			seen[d] = true
		}
		if len(seen) < 10 {
			t.Fatalf("attempt %d: only %d distinct delays in 200 draws — not jittered", attempt, len(seen))
		}
	}
	// The ceiling must saturate: attempts far beyond the doubling range
	// stay capped at max.
	if c := ceilFor(base, max, 50); c != max {
		t.Fatalf("ceiling after 50 attempts = %v, want cap %v", c, max)
	}
}

// TestBackoffDeterministicReplay: the schedule replays from the rng seed.
func TestBackoffDeterministicReplay(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = backoffDelay(rng, 10*time.Millisecond, time.Second, i+1)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: %v vs %v from same seed", i+1, a[i], b[i])
		}
	}
}

// TestReconnectJitteredSchedule drives the real reconnect loop against a
// fake clock: the sleep hook records each requested delay instead of
// sleeping, and a switchable dialer fails a fixed number of attempts.
// Every recorded delay must respect the jittered exponential envelope,
// and the attempt counter (not wall time) must drive the ceiling.
func TestReconnectJitteredSchedule(t *testing.T) {
	_, addr := startServer(t, cpm.Options{GridSize: 16}, server.Options{})

	const base, max = 10 * time.Millisecond, 160 * time.Millisecond
	var failing atomic.Bool
	var dials atomic.Int64
	c, err := Dial(addr, Options{
		Backoff:    base,
		MaxBackoff: max,
		Dialer: func(a string, timeout time.Duration) (net.Conn, error) {
			if failing.Load() {
				dials.Add(1)
				return nil, fmt.Errorf("injected dial failure")
			}
			return net.DialTimeout("tcp", a, timeout)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var mu sync.Mutex
	var slept []time.Duration
	const wantAttempts = 9
	done := make(chan struct{})
	c.mu.Lock()
	c.rng = rand.New(rand.NewSource(42))
	c.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		n := len(slept)
		mu.Unlock()
		if n == wantAttempts {
			failing.Store(false) // heal: next dial succeeds
			close(done)
		}
	}
	c.mu.Unlock()

	failing.Store(true)
	c.breakConn()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("reconnect loop made only %d attempts", dials.Load())
	}
	// The loop must actually recover once the dialer heals.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Tick(cpm.Batch{}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after dialer healed")
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	distinct := map[time.Duration]bool{}
	for i, d := range slept[:wantAttempts] {
		ceil := ceilFor(base, max, i+1)
		if d <= 0 || d > ceil {
			t.Errorf("attempt %d slept %v, want in (0, %v]", i+1, d, ceil)
		}
		distinct[d] = true
	}
	if len(distinct) < 3 {
		t.Errorf("only %d distinct delays across %d attempts — schedule not jittered", len(distinct), wantAttempts)
	}
}
