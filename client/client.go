// Package client is the Go client of the CPM network serving layer: it
// dials a server (internal/server, hosted by cmd/cpmserver), mirrors the
// cpm.Monitor API over the wire — Bootstrap, Register*, MoveQuery,
// RemoveQuery, Tick, Result — and consumes the push-based result-diff
// stream through Subscribe, surviving connection loss transparently.
//
// # Reconnect and resume
//
// When the connection drops, the client reconnects with exponential
// backoff and re-establishes every open subscription, presenting the last
// event sequence number it saw per query. The server answers with an
// explicit reset marker (EventGap with Seq 0) followed by one
// EventSnapshot per query carrying the full current result — terminated
// queries come back with Kind DiffRemove — and then resumes the live diff
// stream. A consumer that folds snapshots in as state replacements
// therefore never silently misses a transition, even across crashes of the
// link (the paper's monitoring guarantee, extended over the network).
//
// Requests issued while the link is down wait for the reconnect (bounded
// by Options.ReconnectWait). A request whose connection dies mid-flight
// returns ErrDisconnected without an automatic retry: the client cannot
// know whether the server applied it, and replaying a Tick would
// double-apply the batch. Idempotent callers can simply retry themselves.
//
// # Concurrency
//
// All methods are safe for concurrent use. Events are delivered per
// subscription, in order, over a buffered channel; a consumer that stops
// reading eventually backpressures the socket, at which point the
// server-side policy (DropOldest or CoalesceLatest) sheds events and the
// stream carries an explicit gap marker instead.
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"cpm"
	"cpm/internal/wire"
)

var (
	// ErrClosed is returned by every method after Close.
	ErrClosed = errors.New("client: closed")
	// ErrDisconnected is returned by a request whose connection died
	// mid-flight (the server may or may not have applied it), or that
	// found no connection within Options.ReconnectWait.
	ErrDisconnected = errors.New("client: disconnected")
)

// ErrUnsent refines ErrDisconnected for requests that provably never
// reached the wire: no connection came up within ReconnectWait, or the
// connection turned over before the request was written. Unlike a
// mid-flight ErrDisconnected, the server definitely did not apply the
// operation, so retrying cannot double-apply it — the cluster coordinator
// relies on this to decide between replaying a batch and resetting a
// worker. errors.Is(err, ErrDisconnected) remains true.
var ErrUnsent = fmt.Errorf("%w (request never sent)", ErrDisconnected)

// Options tune a Client. The zero value is ready for use.
type Options struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// Dialer, when set, replaces net.DialTimeout("tcp", …) for every
	// connection attempt — the hook a fault-injection harness (or a
	// custom transport) uses to interpose on the client's links.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// ReconnectWait bounds how long a request waits for a live connection
	// before failing with ErrDisconnected (default 30s).
	ReconnectWait time.Duration
	// Backoff scales the reconnect delay: attempt n sleeps a uniformly
	// random ("full jitter") duration in (0, min(Backoff·2ⁿ, MaxBackoff)],
	// so the coordinator and a crowd of subscribers redialing a restarted
	// server spread out instead of arriving in synchronized waves.
	// Defaults: Backoff 50ms, MaxBackoff 2s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Buffer is the client-side per-subscription delivery buffer in events
	// (default 256).
	Buffer int
	// SocketReadBuffer, when positive, sets the connection's kernel
	// receive-buffer size (SetReadBuffer). Shrinking it makes
	// slow-consumer backpressure reproducible in tests; leave 0 for the
	// OS default in production.
	SocketReadBuffer int
	// SyncDiffs requests sync-diffs mode in the handshake: the server
	// answers every successful mutating request with the result diffs it
	// produced, surfaced through the *Diffs method variants (TickDiffs,
	// RegisterDefDiffs, …). The cluster coordinator runs its worker
	// connections in this mode.
	SyncDiffs bool
	// Checksum negotiates CRC32-C frame trailers in the handshake: every
	// post-handshake frame in both directions carries a checksum the
	// receiver verifies, so a link that corrupts bytes produces an
	// explicit connection error instead of silently wrong decoded values.
	// The cluster coordinator runs its worker connections in this mode;
	// trusted LAN/localhost links can leave it off.
	Checksum bool
	// Trace negotiates the distributed-tracing extension in the
	// handshake: SetTrace stamps the next request with trace context, the
	// server's Diffs replies carry the tick-phase trailer (surfaced by
	// TickDiffsPhases), and ServerTraces polls the server's trace flight
	// recorder. Against an old server the Welcome carries no flags byte
	// and the client silently degrades: context is not sent, phases come
	// back zero.
	Trace bool
	// FrameTimeout bounds how long a frame body may take to arrive once
	// its header has been read (default 10s, negative disables). An idle
	// connection may wait forever between frames, but a started frame
	// must finish: the CRC trailer cannot protect the length prefix
	// itself, and a corrupted length that overstates the body would
	// otherwise leave the read loop blocked on bytes that never come —
	// wedging every in-flight request without ever surfacing an error.
	FrameTimeout time.Duration
	// OnConnect, when set, is called after every completed handshake —
	// the first dial and every reconnect — with the server's instance
	// identifier from the Welcome frame. A changed instance means the
	// server restarted and lost its state. The callback runs on the
	// dialing goroutine before any request is released; keep it fast.
	OnConnect func(instance uint64)
	// Logf, when set, receives reconnect diagnostics.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.ReconnectWait <= 0 {
		o.ReconnectWait = 30 * time.Second
	}
	if o.Backoff <= 0 {
		o.Backoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Buffer <= 0 {
		o.Buffer = 256
	}
	if o.FrameTimeout == 0 {
		o.FrameTimeout = 10 * time.Second
	}
}

// call is one in-flight request.
type call struct {
	done chan struct{}
	err  error
	// Result response (ResultReq only).
	live bool
	res  []cpm.Neighbor
	// Stats response (StatsReq only).
	stats []wire.Stat
	// Diffs response (mutating requests on a SyncDiffs connection).
	diffs []cpm.ResultDiff
	// Tick-phase trailer of a Diffs response (Trace connections only).
	phases cpm.PhaseNanos
	// Traces response (TracesReq only): the recorder's JSON document.
	traces []byte
}

// Client is a connection to a CPM server. Create one with Dial.
type Client struct {
	addr string
	opts Options

	mu      sync.Mutex
	nc      net.Conn      // current connection; nil while down
	up      chan struct{} // closed when a connection is (re-)established
	closed  bool
	nextReq uint64
	nextSub uint32
	pending map[uint64]*call
	subs    map[uint32]*Subscription
	// instance is the server identifier from the latest Welcome.
	instance uint64
	// traceOK records whether the latest handshake negotiated the
	// tracing extension (the server echoed WelcomeTrace).
	traceOK bool
	// pendTraceID/pendSpanID hold trace context set by SetTrace, consumed
	// by the next request sent (prepended as a TraceCtx frame).
	pendTraceID uint64
	pendSpanID  uint64

	wbuf []byte // reused encode buffer; guarded by mu

	// Reconnect-schedule hooks: rng draws the jittered delays (guarded by
	// mu), sleep pauses between attempts. Tests substitute both to verify
	// the schedule against a fake clock.
	rng   *rand.Rand
	sleep func(time.Duration)
}

// Dial connects to a server. The first connection is established
// synchronously, so a bad address fails here rather than on first use;
// afterwards the client heals connection loss by itself.
func Dial(addr string, opts Options) (*Client, error) {
	opts.defaults()
	c := &Client{
		addr:    addr,
		opts:    opts,
		up:      make(chan struct{}),
		pending: make(map[uint64]*call),
		subs:    make(map[uint32]*Subscription),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:   time.Sleep,
	}
	nc, err := c.dialOnce()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.install(nc)
	c.mu.Unlock()
	return c, nil
}

// dialOnce establishes and handshakes one connection.
func (c *Client) dialOnce() (net.Conn, error) {
	dial := c.opts.Dialer
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
		if c.opts.SocketReadBuffer > 0 {
			tc.SetReadBuffer(c.opts.SocketReadBuffer)
		}
	}
	var flags uint8
	if c.opts.SyncDiffs {
		flags |= wire.HelloSyncDiffs
	}
	if c.opts.Checksum {
		flags |= wire.HelloChecksum
	}
	if c.opts.Trace {
		flags |= wire.HelloTrace
	}
	if _, err := nc.Write(wire.AppendHello(nil, flags)); err != nil {
		nc.Close()
		return nil, err
	}
	r := wire.NewReader(nc)
	nc.SetReadDeadline(time.Now().Add(c.opts.DialTimeout))
	t, payload, err := r.Next()
	if err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetReadDeadline(time.Time{})
	if t != wire.FrameWelcome {
		nc.Close()
		return nil, fmt.Errorf("client: handshake got %v", t)
	}
	instance, wflags, err := wire.DecodeWelcome(payload)
	if err != nil {
		nc.Close()
		return nil, err
	}
	c.mu.Lock()
	c.instance = instance
	c.traceOK = wflags&wire.WelcomeTrace != 0
	c.mu.Unlock()
	if c.opts.OnConnect != nil {
		c.opts.OnConnect(instance)
	}
	return nc, nil
}

// InstanceID returns the server instance identifier from the most recent
// handshake (0 before the first, or against a server that predates the
// field). A change between reconnects means the server restarted.
func (c *Client) InstanceID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.instance
}

// install adopts a fresh connection (caller holds mu): it becomes current,
// waiters are released and its read loop starts.
func (c *Client) install(nc net.Conn) {
	c.nc = nc
	close(c.up)
	go c.readLoop(nc)
}

// logf logs through Options.Logf when set.
func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Close shuts the client down: the connection closes, every subscription's
// Events channel closes, and every blocked request fails.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	nc := c.nc
	c.nc = nil
	c.failPendingLocked(ErrClosed)
	subs := c.subs
	c.subs = nil
	c.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
	for _, s := range subs {
		s.shutdown()
	}
	return nil
}

// failPendingLocked fails every in-flight request (caller holds mu).
func (c *Client) failPendingLocked(err error) {
	for id, cl := range c.pending {
		cl.err = err
		close(cl.done)
		delete(c.pending, id)
	}
}

// connLost reacts to a dead connection: if nc is still current, in-flight
// requests fail, the up gate rearms and the reconnect loop starts.
func (c *Client) connLost(nc net.Conn, err error) {
	nc.Close()
	c.mu.Lock()
	if c.closed || c.nc != nc {
		c.mu.Unlock()
		return
	}
	c.nc = nil
	c.up = make(chan struct{})
	c.failPendingLocked(ErrDisconnected)
	c.mu.Unlock()
	c.logf("client: connection lost: %v; reconnecting", err)
	go c.reconnect()
}

// backoffDelay computes the delay before reconnect attempt (attempt ≥ 1,
// i.e. after attempt failures) under full jitter: uniform in
// (0, min(base·2^(attempt-1), max)]. Randomizing the whole interval — not
// just a fringe around the exponential — is what desynchronizes a
// thundering herd of clients that all lost the same server at the same
// moment, while the exponential ceiling still bounds the aggregate dial
// rate.
func backoffDelay(rng *rand.Rand, base, max time.Duration, attempt int) time.Duration {
	ceil := base
	for i := 1; i < attempt && ceil < max; i++ {
		ceil *= 2
	}
	if ceil > max {
		ceil = max
	}
	if ceil <= 0 {
		return 0
	}
	return 1 + time.Duration(rng.Int63n(int64(ceil)))
}

// nextDelay draws the jittered delay for the given failed-attempt count.
func (c *Client) nextDelay(attempt int) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return backoffDelay(c.rng, c.opts.Backoff, c.opts.MaxBackoff, attempt)
}

// reconnect dials with jittered exponential backoff until it succeeds (or
// the client closes), then re-establishes every open subscription with
// its resume points before releasing waiting requests.
func (c *Client) reconnect() {
	for attempt := 1; ; attempt++ {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()

		nc, err := c.dialOnce()
		if err != nil {
			delay := c.nextDelay(attempt)
			c.logf("client: reconnect failed: %v (retrying in %v)", err, delay)
			c.sleep(delay)
			continue
		}

		// Re-subscribe before releasing requests: once a waiter's Tick
		// runs, the resumed streams must already be in place, or its
		// events would fall into the gap.
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nc.Close()
			return
		}
		var frames []byte
		for id, s := range c.subs {
			// Only established subscriptions are resumed here; one whose
			// initial SubscribeWith is still in flight sends its own frame
			// once the connection is back.
			if s.established {
				mark := len(frames)
				frames = wire.AppendSubscribe(frames, 0, s.resumeFrame(id))
				if c.opts.Checksum {
					frames = wire.Seal(frames, mark)
				}
			}
		}
		c.mu.Unlock()
		if len(frames) > 0 {
			if _, err := nc.Write(frames); err != nil {
				nc.Close()
				c.logf("client: resubscribe failed: %v", err)
				continue
			}
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nc.Close()
			return
		}
		c.install(nc)
		c.mu.Unlock()
		c.logf("client: reconnected to %s", c.addr)
		return
	}
}

// await returns the current connection, waiting up to ReconnectWait for
// the reconnect loop if the link is down.
func (c *Client) await() (net.Conn, error) {
	deadline := time.Now().Add(c.opts.ReconnectWait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, ErrClosed
		}
		if c.nc != nil {
			nc := c.nc
			c.mu.Unlock()
			return nc, nil
		}
		up := c.up
		c.mu.Unlock()
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, ErrDisconnected
		}
		select {
		case <-up:
		case <-time.After(wait):
			return nil, ErrDisconnected
		}
	}
}

// roundTrip sends one request frame (built by build with the assigned
// request id) and waits for its response. Failures before the write
// return ErrUnsent (the request never reached the wire); failures after
// it return plain ErrDisconnected (outcome unknown).
func (c *Client) roundTrip(build func(dst []byte, reqID uint64) []byte) (*call, error) {
	nc, err := c.await()
	if err != nil {
		if errors.Is(err, ErrDisconnected) {
			return nil, ErrUnsent
		}
		return nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.nc != nc {
		// The connection turned over while we were acquiring the lock.
		c.mu.Unlock()
		return nil, ErrUnsent
	}
	c.nextReq++
	reqID := c.nextReq
	cl := &call{done: make(chan struct{})}
	c.pending[reqID] = cl
	c.wbuf = c.wbuf[:0]
	// Pending trace context rides ahead of the request as its own frame
	// (each frame sealed at its own mark); one Write keeps the pair
	// adjacent on the wire. Context set against a server that did not
	// negotiate tracing is dropped, not sent.
	if c.pendTraceID != 0 {
		if c.traceOK {
			c.wbuf = wire.AppendTraceCtx(c.wbuf, c.pendTraceID, c.pendSpanID)
			if c.opts.Checksum {
				c.wbuf = wire.Seal(c.wbuf, 0)
			}
		}
		c.pendTraceID, c.pendSpanID = 0, 0
	}
	mark := len(c.wbuf)
	c.wbuf = build(c.wbuf, reqID)
	if c.opts.Checksum {
		c.wbuf = wire.Seal(c.wbuf, mark)
	}
	// Write under mu: requests on one connection are serialized, which
	// keeps frame boundaries intact and request order deterministic.
	_, werr := nc.Write(c.wbuf)
	c.mu.Unlock()
	if werr != nil {
		c.connLost(nc, werr)
		return nil, ErrDisconnected
	}
	<-cl.done
	if cl.err != nil {
		return nil, cl.err
	}
	return cl, nil
}

// ack performs a round trip whose response is a bare ack.
func (c *Client) ack(build func(dst []byte, reqID uint64) []byte) error {
	_, err := c.roundTrip(build)
	return err
}

// readLoop dispatches inbound frames of one connection until it dies.
func (c *Client) readLoop(nc net.Conn) {
	r := wire.NewReader(nc)
	if c.opts.Checksum {
		r.EnableChecksum()
	}
	if d := c.opts.FrameTimeout; d > 0 {
		r.ArmBody(func(owed bool) {
			if owed {
				nc.SetReadDeadline(time.Now().Add(d))
			} else {
				nc.SetReadDeadline(time.Time{})
			}
		})
	}
	for {
		t, payload, err := r.Next()
		if err != nil {
			c.connLost(nc, err)
			return
		}
		if err := c.dispatch(t, payload); err != nil {
			c.connLost(nc, err)
			return
		}
	}
}

// dispatch routes one inbound frame: responses to their pending call,
// stream frames to their subscription.
func (c *Client) dispatch(t wire.FrameType, payload []byte) error {
	switch t {
	case wire.FrameAck:
		reqID, msg, err := wire.DecodeAck(payload)
		if err != nil {
			return err
		}
		if reqID == 0 {
			return nil // resubscribe acks carry request id 0: nobody waits
		}
		cl := c.takeCall(reqID)
		if cl == nil {
			return nil
		}
		if msg != "" {
			cl.err = errors.New(msg)
		}
		close(cl.done)

	case wire.FrameResult:
		reqID, _, live, res, err := wire.DecodeResult(payload)
		if err != nil {
			return err
		}
		cl := c.takeCall(reqID)
		if cl == nil {
			return nil
		}
		cl.live = live
		cl.res = res
		close(cl.done)

	case wire.FrameStats:
		reqID, stats, err := wire.DecodeStats(payload)
		if err != nil {
			return err
		}
		cl := c.takeCall(reqID)
		if cl == nil {
			return nil
		}
		cl.stats = stats
		close(cl.done)

	case wire.FrameDiffs:
		reqID, diffs, phases, err := wire.DecodeDiffsPhases(payload)
		if err != nil {
			return err
		}
		cl := c.takeCall(reqID)
		if cl == nil {
			return nil
		}
		cl.diffs = diffs
		cl.phases = phases
		close(cl.done)

	case wire.FrameTraces:
		reqID, doc, err := wire.DecodeTraces(payload)
		if err != nil {
			return err
		}
		cl := c.takeCall(reqID)
		if cl == nil {
			return nil
		}
		cl.traces = append([]byte(nil), doc...) // doc aliases the read buffer
		close(cl.done)

	case wire.FrameEvent:
		ev, err := wire.DecodeEvent(payload)
		if err != nil {
			return err
		}
		if s := c.sub(ev.SubID); s != nil {
			s.deliver(Event{Type: EventDiff, Seq: ev.Seq, ResultDiff: ev.Diff})
		}

	case wire.FrameSnapshot:
		snap, err := wire.DecodeSnapshot(payload)
		if err != nil {
			return err
		}
		if s := c.sub(snap.SubID); s != nil {
			d := cpm.ResultDiff{Query: snap.Query, Kind: cpm.DiffUpdate, Result: snap.Result}
			if !snap.Live {
				d.Kind = cpm.DiffRemove
				d.Result = nil
			}
			s.deliver(Event{Type: EventSnapshot, ResultDiff: d})
		}

	case wire.FrameGap:
		gap, err := wire.DecodeGap(payload)
		if err != nil {
			return err
		}
		if s := c.sub(gap.SubID); s != nil {
			var lost uint64
			if gap.To > gap.From {
				lost = gap.To - gap.From - 1
			}
			s.deliver(Event{Type: EventGap, Seq: gap.To, Lost: lost})
		}

	default:
		return fmt.Errorf("client: unexpected frame %v", t)
	}
	return nil
}

// takeCall claims a pending request by id.
func (c *Client) takeCall(reqID uint64) *call {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl := c.pending[reqID]
	delete(c.pending, reqID)
	return cl
}

// sub looks a subscription up by wire id.
func (c *Client) sub(id uint32) *Subscription {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.subs[id]
}

// Bootstrap loads the server monitor's initial object population. Call
// once, before registering queries or ticking.
func (c *Client) Bootstrap(objs map[cpm.ObjectID]cpm.Point) error {
	wireObjs := make([]wire.BootstrapObject, 0, len(objs))
	for id, p := range objs {
		wireObjs = append(wireObjs, wire.BootstrapObject{ID: id, Pos: p})
	}
	return c.ack(func(dst []byte, reqID uint64) []byte {
		return wire.AppendBootstrap(dst, reqID, wireObjs)
	})
}

// Tick runs one processing cycle on the server with the given update
// batch. It returns after the cycle completed (and its result diffs were
// published), so alternating Tick and Result observes the same
// cycle-consistent states an in-process monitor would.
func (c *Client) Tick(b cpm.Batch) error {
	return c.ack(func(dst []byte, reqID uint64) []byte {
		return wire.AppendTick(dst, reqID, b)
	})
}

// RegisterQuery installs a conventional k-NN query on the server.
func (c *Client) RegisterQuery(id cpm.QueryID, q cpm.Point, k int) error {
	return c.register(wire.Register{ID: id, Kind: wire.KindPoint, K: k, Points: []cpm.Point{q}})
}

// RegisterAggQuery installs an aggregate k-NN query on the server.
func (c *Client) RegisterAggQuery(id cpm.QueryID, pts []cpm.Point, k int, agg cpm.Agg) error {
	return c.register(wire.Register{ID: id, Kind: wire.KindAgg, K: k, Agg: agg, Points: pts})
}

// RegisterConstrainedQuery installs a constrained k-NN query on the
// server.
func (c *Client) RegisterConstrainedQuery(id cpm.QueryID, q cpm.Point, k int, region cpm.Rect) error {
	return c.register(wire.Register{ID: id, Kind: wire.KindConstrained, K: k, Points: []cpm.Point{q}, Region: region})
}

// RegisterRangeQuery installs a continuous range query on the server.
func (c *Client) RegisterRangeQuery(id cpm.QueryID, center cpm.Point, radius float64) error {
	return c.register(wire.Register{ID: id, Kind: wire.KindRange, Points: []cpm.Point{center}, Radius: radius})
}

func (c *Client) register(r wire.Register) error {
	return c.ack(func(dst []byte, reqID uint64) []byte {
		return wire.AppendRegister(dst, reqID, r)
	})
}

// MoveQuery relocates an installed query; pass one point per original
// query point, like cpm.Monitor.MoveQuery.
func (c *Client) MoveQuery(id cpm.QueryID, to ...cpm.Point) error {
	return c.ack(func(dst []byte, reqID uint64) []byte {
		return wire.AppendMoveQuery(dst, reqID, id, to)
	})
}

// RemoveQuery terminates a query. Unknown ids are a no-op.
func (c *Client) RemoveQuery(id cpm.QueryID) error {
	return c.ack(func(dst []byte, reqID uint64) []byte {
		return wire.AppendRemoveQuery(dst, reqID, id)
	})
}

// QueryDef is a query registration in its wire form — the generic
// definition RegisterDef accepts, covering all four query kinds. The
// cluster coordinator stores these to replay registrations onto workers.
type QueryDef = wire.Register

// RegisterDef installs a query from its generic wire definition.
func (c *Client) RegisterDef(r QueryDef) error { return c.register(r) }

// diffsCall performs a round trip whose response carries the operation's
// result diffs (requires Options.SyncDiffs; on a plain connection the
// server acks and the diffs come back nil).
func (c *Client) diffsCall(build func(dst []byte, reqID uint64) []byte) ([]cpm.ResultDiff, error) {
	cl, err := c.roundTrip(build)
	if err != nil {
		return nil, err
	}
	return cl.diffs, nil
}

// TickDiffs is Tick returning the result diffs the cycle produced, in
// query-id order (requires Options.SyncDiffs).
func (c *Client) TickDiffs(b cpm.Batch) ([]cpm.ResultDiff, error) {
	return c.diffsCall(func(dst []byte, reqID uint64) []byte {
		return wire.AppendTick(dst, reqID, b)
	})
}

// SetTrace stamps the next request this client sends with distributed-
// trace context: the request rides behind a TraceCtx frame carrying the
// ids, so the server's span for that op joins the caller's trace. The
// context applies to exactly one request and is dropped (not queued) if
// the server did not negotiate tracing. With concurrent callers, pair
// each SetTrace with its request under external serialization — the
// coordinator's per-worker mutex, or cpmload's trace token.
func (c *Client) SetTrace(traceID, spanID uint64) {
	if traceID == 0 {
		return
	}
	c.mu.Lock()
	c.pendTraceID, c.pendSpanID = traceID, spanID
	c.mu.Unlock()
}

// TickDiffsPhases is TickDiffs additionally returning the server engine's
// tick-phase decomposition (requires Options.SyncDiffs and Options.Trace;
// zero phases against a server without the tracing extension).
func (c *Client) TickDiffsPhases(b cpm.Batch) ([]cpm.ResultDiff, cpm.PhaseNanos, error) {
	cl, err := c.roundTrip(func(dst []byte, reqID uint64) []byte {
		return wire.AppendTick(dst, reqID, b)
	})
	if err != nil {
		return nil, cpm.PhaseNanos{}, err
	}
	return cl.diffs, cl.phases, nil
}

// ServerTraces polls the server's trace flight recorder and returns its
// contents as the JSON document /debug/traces serves (parse it with
// tracing.ParseTraces). Requires Options.Trace; a server without the
// extension rejects the request.
func (c *Client) ServerTraces() ([]byte, error) {
	cl, err := c.roundTrip(func(dst []byte, reqID uint64) []byte {
		return wire.AppendTracesReq(dst, reqID, 0)
	})
	if err != nil {
		return nil, err
	}
	return cl.traces, nil
}

// RegisterDefDiffs is RegisterDef returning the installation diff
// (requires Options.SyncDiffs).
func (c *Client) RegisterDefDiffs(r QueryDef) ([]cpm.ResultDiff, error) {
	return c.diffsCall(func(dst []byte, reqID uint64) []byte {
		return wire.AppendRegister(dst, reqID, r)
	})
}

// MoveQueryDiffs is MoveQuery returning the resulting diffs (requires
// Options.SyncDiffs).
func (c *Client) MoveQueryDiffs(id cpm.QueryID, to ...cpm.Point) ([]cpm.ResultDiff, error) {
	return c.diffsCall(func(dst []byte, reqID uint64) []byte {
		return wire.AppendMoveQuery(dst, reqID, id, to)
	})
}

// RemoveQueryDiffs is RemoveQuery returning the terminal DiffRemove
// (requires Options.SyncDiffs).
func (c *Client) RemoveQueryDiffs(id cpm.QueryID) ([]cpm.ResultDiff, error) {
	return c.diffsCall(func(dst []byte, reqID uint64) []byte {
		return wire.AppendRemoveQuery(dst, reqID, id)
	})
}

// Reset wipes the server monitor back to its just-constructed state:
// every query removed, the object population discarded, Bootstrap
// allowed again. The cluster coordinator uses it to re-sync a worker
// whose state is unknown.
func (c *Client) Reset() error {
	return c.ack(func(dst []byte, reqID uint64) []byte {
		return wire.AppendReset(dst, reqID)
	})
}

// Result polls a query's full current result, ordered by (distance, id).
// Unknown ids yield nil, like cpm.Monitor.Result.
func (c *Client) Result(id cpm.QueryID) ([]cpm.Neighbor, error) {
	cl, err := c.roundTrip(func(dst []byte, reqID uint64) []byte {
		return wire.AppendResultReq(dst, reqID, id)
	})
	if err != nil {
		return nil, err
	}
	return cl.res, nil
}

// Stat is one named metric reading returned by ServerStats.
type Stat = wire.Stat

// ServerStats polls the server's metrics registry: every counter, gauge
// and histogram percentile the /metrics endpoint exposes, as flat
// (name, value) pairs in registration order. See docs/METRICS.md for the
// meaning of each name.
func (c *Client) ServerStats() ([]Stat, error) {
	cl, err := c.roundTrip(func(dst []byte, reqID uint64) []byte {
		return wire.AppendStatsReq(dst, reqID)
	})
	if err != nil {
		return nil, err
	}
	return cl.stats, nil
}

// Redial drops the current connection, letting the automatic reconnect
// re-establish it — a failover drill: in-flight requests fail with
// ErrDisconnected and every subscription resumes with its last-seen
// sequence numbers, exactly as after a real network failure.
func (c *Client) Redial() {
	c.mu.Lock()
	nc := c.nc
	c.mu.Unlock()
	if nc != nil {
		nc.Close()
	}
}

// breakConn is Redial under its test-hook name.
func (c *Client) breakConn() { c.Redial() }
