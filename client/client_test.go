package client

import (
	"net"
	"reflect"
	"testing"
	"time"

	"cpm"
	"cpm/internal/server"
	"cpm/workload"
)

// startServer serves a fresh monitor on loopback and returns its address.
func startServer(t *testing.T, opts cpm.Options, sopts server.Options) (*server.Server, string) {
	t.Helper()
	mon := cpm.NewMonitor(opts)
	s := server.New(mon, sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		mon.Close()
	})
	return s, ln.Addr().String()
}

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.New(
		workload.CityOptions{Width: 16, Height: 16, Seed: 77},
		workload.Params{
			N: 400, NumQueries: 10,
			ObjectSpeed: workload.Medium, QuerySpeed: workload.Medium,
			ObjectAgility: 0.5, QueryAgility: 0.4,
			Seed: 11,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// recv reads one event or fails after a timeout.
func recv(t *testing.T, sub *Subscription) Event {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatal("event stream closed unexpectedly")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for event")
		panic("unreachable")
	}
}

// TestLoopbackEquivalence is the acceptance test of the serving layer: a
// client driving a remote monitor over TCP — ticks, registrations, a
// subscription, and a forced-drop reconnect with resume-from-Seq — must
// observe exactly the result sets and ordered diff stream of an in-process
// cpm.Monitor fed the identical workload.
func TestLoopbackEquivalence(t *testing.T) {
	const k, phase1, phase2 = 4, 8, 6

	_, addr := startServer(t, cpm.Options{GridSize: 16}, server.Options{})
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	local := cpm.NewMonitor(cpm.Options{GridSize: 16})
	defer local.Close()

	w := testWorkload(t)
	objs := w.InitialObjects()
	local.Bootstrap(objs)
	if err := c.Bootstrap(objs); err != nil {
		t.Fatal(err)
	}

	// Subscribe both sides at the same logical point — before any
	// registration — so the event sequence numbers line up exactly.
	localSub := local.SubscribeWith(cpm.SubscribeOptions{Buffer: 4096})
	remoteSub, err := c.SubscribeWith(SubscribeOptions{Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}

	queries := w.InitialQueries()
	for i, q := range queries {
		if err := local.RegisterQuery(cpm.QueryID(i), q, k); err != nil {
			t.Fatal(err)
		}
		if err := c.RegisterQuery(cpm.QueryID(i), q, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := local.RegisterRangeQuery(100, cpm.Point{X: 0.5, Y: 0.5}, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterRangeQuery(100, cpm.Point{X: 0.5, Y: 0.5}, 0.1); err != nil {
		t.Fatal(err)
	}

	// drainPair reads n events from both streams and compares them.
	drainPair := func(n int, stage string) {
		t.Helper()
		for i := 0; i < n; i++ {
			lev := <-localSub.Events()
			rev := recv(t, remoteSub)
			if rev.Type != EventDiff {
				t.Fatalf("%s event %d: remote type %v, want diff", stage, i, rev.Type)
			}
			if rev.Seq != lev.Seq {
				t.Fatalf("%s event %d: seq %d != local %d", stage, i, rev.Seq, lev.Seq)
			}
			if !reflect.DeepEqual(rev.ResultDiff, lev.ResultDiff) {
				t.Fatalf("%s event %d:\nremote %+v\nlocal  %+v", stage, i, rev.ResultDiff, lev.ResultDiff)
			}
		}
	}
	drainPair(len(queries)+1, "install")

	compareResults := func(stage string) {
		t.Helper()
		for q := 0; q <= len(queries); q++ {
			id := cpm.QueryID(q)
			if q == len(queries) {
				id = 100
			}
			want := local.Result(id)
			got, err := c.Result(id)
			if err != nil {
				t.Fatalf("%s q%d: %v", stage, id, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s q%d: remote %v, local %v", stage, id, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s q%d: remote %v, local %v", stage, id, got, want)
				}
			}
		}
	}

	// Phase 1: identical ticks, identical streams and results every cycle.
	for cycle := 0; cycle < phase1; cycle++ {
		b := w.Advance()
		local.Tick(b)
		if err := c.Tick(b); err != nil {
			t.Fatal(err)
		}
		drainPair(len(local.ChangedQueries()), "phase1")
		compareResults("phase1")
	}

	// Forced drop: kill the TCP connection under the client. The client
	// reconnects and re-subscribes with its last-seen Seq per query; the
	// stream must carry an explicit reset gap, then one snapshot per
	// installed query matching the exact server state at resubscription,
	// then the live diff stream again.
	c.breakConn()
	pre := local.Snapshot() // the state the re-sync snapshots must show
	b := w.Advance()
	local.Tick(b)
	if err := c.Tick(b); err != nil { // blocks until the reconnect healed the link
		t.Fatal(err)
	}

	gap := recv(t, remoteSub)
	if gap.Type != EventGap || gap.Seq != 0 {
		t.Fatalf("after reconnect got %+v, want a reset gap (Seq 0)", gap)
	}
	if remoteSub.Gaps() != 1 {
		t.Fatalf("Gaps() = %d after one reconnect", remoteSub.Gaps())
	}
	for _, want := range pre {
		ev := recv(t, remoteSub)
		if ev.Type != EventSnapshot {
			t.Fatalf("re-sync: got %+v, want snapshot of q%d", ev, want.Query)
		}
		if ev.Query != want.Query {
			t.Fatalf("re-sync: snapshot of q%d, want q%d", ev.Query, want.Query)
		}
		if len(ev.Result) != len(want.Result) {
			t.Fatalf("re-sync q%d: %v, want %v", ev.Query, ev.Result, want.Result)
		}
		for i := range want.Result {
			if ev.Result[i] != want.Result[i] {
				t.Fatalf("re-sync q%d: %v, want %v", ev.Query, ev.Result, want.Result)
			}
		}
	}

	// After the re-sync, the live streams run in lockstep again — the
	// server-side sequence numbering restarted at 1, so compare content
	// and contiguity rather than absolute Seq.
	var remoteSeq uint64
	drainResumed := func(n int, stage string) {
		t.Helper()
		for i := 0; i < n; i++ {
			lev := <-localSub.Events()
			rev := recv(t, remoteSub)
			if rev.Type != EventDiff {
				t.Fatalf("%s event %d: remote type %v, want diff", stage, i, rev.Type)
			}
			if rev.Seq != remoteSeq+1 {
				t.Fatalf("%s event %d: seq %d, want %d (no silent loss)", stage, i, rev.Seq, remoteSeq+1)
			}
			remoteSeq = rev.Seq
			if !reflect.DeepEqual(rev.ResultDiff, lev.ResultDiff) {
				t.Fatalf("%s event %d:\nremote %+v\nlocal  %+v", stage, i, rev.ResultDiff, lev.ResultDiff)
			}
		}
	}
	drainResumed(len(local.ChangedQueries()), "reconnect-cycle")
	compareResults("reconnect-cycle")

	// Phase 2: more identical cycles, plus churn (a termination the
	// subscriber must see as a DiffRemove on both sides).
	for cycle := 0; cycle < phase2; cycle++ {
		b := w.Advance()
		local.Tick(b)
		if err := c.Tick(b); err != nil {
			t.Fatal(err)
		}
		drainResumed(len(local.ChangedQueries()), "phase2")
		compareResults("phase2")
		if cycle == 2 {
			local.RemoveQuery(3)
			if err := c.RemoveQuery(3); err != nil {
				t.Fatal(err)
			}
			drainResumed(1, "remove")
		}
	}

	if localSub.Dropped() != 0 {
		t.Fatalf("local subscription dropped %d events despite ample buffer", localSub.Dropped())
	}
	if remoteSub.Gaps() != 1 {
		t.Fatalf("Gaps() = %d at end, want exactly the reconnect re-sync", remoteSub.Gaps())
	}

	// Shutdown: closing the client closes the stream.
	if err := remoteSub.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-remoteSub.Events(); ok {
		t.Fatal("remote stream still open after Close")
	}
}

// TestFilteredResumeNoLeak pins the resume re-sync of a filtered
// subscription: a subscriber to one query that reconnects before ever
// seeing an event must get the reset marker and a snapshot of exactly its
// own query — never another query's data (regression test for the
// empty-resume reset being mistaken for a resume point of query id 0).
func TestFilteredResumeNoLeak(t *testing.T) {
	_, addr := startServer(t, cpm.Options{GridSize: 16}, server.Options{})
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Bootstrap(map[cpm.ObjectID]cpm.Point{
		1: {X: 0.1, Y: 0.1}, 2: {X: 0.2, Y: 0.2}, 3: {X: 0.8, Y: 0.8},
	}); err != nil {
		t.Fatal(err)
	}
	// Query 0 exists and is none of the subscriber's business.
	if err := c.RegisterQuery(0, cpm.Point{X: 0.15, Y: 0.15}, 2); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(5, cpm.Point{X: 0.8, Y: 0.8}, 1); err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(5)
	if err != nil {
		t.Fatal(err)
	}

	c.breakConn()
	// Both results change; only q5's diff belongs on this stream.
	if err := c.Tick(cpm.Batch{Objects: []cpm.Update{
		cpm.MoveUpdate(2, cpm.Point{X: 0.2, Y: 0.2}, cpm.Point{X: 0.14, Y: 0.14}),
		cpm.MoveUpdate(3, cpm.Point{X: 0.8, Y: 0.8}, cpm.Point{X: 0.6, Y: 0.6}),
	}}); err != nil {
		t.Fatal(err)
	}

	if ev := recv(t, sub); ev.Type != EventGap || ev.Seq != 0 {
		t.Fatalf("first post-reconnect event %+v, want reset gap", ev)
	}
	snap := recv(t, sub)
	if snap.Type != EventSnapshot || snap.Query != 5 {
		t.Fatalf("re-sync snapshot %+v, want query 5 only", snap)
	}
	diff := recv(t, sub)
	if diff.Type != EventDiff || diff.Query != 5 {
		t.Fatalf("live event %+v, want the q5 diff", diff)
	}
	select {
	case ev := <-sub.Events():
		t.Fatalf("unexpected extra event %+v on a filtered stream", ev)
	case <-time.After(300 * time.Millisecond):
	}
}

// TestSlowConsumerGapResync is the forced-drop satellite: with tiny
// buffers at every stage — server-side hub buffer, writer queue, kernel
// socket buffers, client delivery buffer — a stalled subscriber loses
// events to the DropOldest policy while a second connection keeps ticking.
// The stream must announce every loss with an explicit gap marker (never a
// silent seq jump), and a reconnect with the subscriber's last-seen Seq
// must re-sync it, via snapshots, to exactly the polled state.
func TestSlowConsumerGapResync(t *testing.T) {
	const k, stallCycles = 4, 50
	_, addr := startServer(t, cpm.Options{GridSize: 16},
		server.Options{WriteQueue: 1, SocketWriteBuffer: 1})

	// The ingest connection drives the monitor; the watcher subscribes.
	ingest, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ingest.Close()
	watcher, err := Dial(addr, Options{Buffer: 1, SocketReadBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()

	w := testWorkload(t)
	if err := ingest.Bootstrap(w.InitialObjects()); err != nil {
		t.Fatal(err)
	}
	queries := w.InitialQueries()
	for i, q := range queries {
		if err := ingest.RegisterQuery(cpm.QueryID(i), q, k); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := watcher.SubscribeWith(SubscribeOptions{Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Phase A: the watcher stalls while busy cycles run. Hub buffer 2 +
	// writer queue 1 + minimal socket buffers cannot hold 50 cycles of
	// events, so the hub's DropOldest policy must shed.
	for cycle := 0; cycle < stallCycles; cycle++ {
		if err := ingest.Tick(w.Advance()); err != nil {
			t.Fatal(err)
		}
	}

	// Phase B: drain. Every seq jump must be announced by a gap marker.
	state := make(map[cpm.QueryID][]cpm.Neighbor)
	var last uint64
	gapOpen, gaps := false, 0
	apply := func(ev Event) {
		switch ev.Type {
		case EventGap:
			gapOpen = true
			gaps++
		case EventDiff:
			if ev.Seq != last+1 && !gapOpen {
				t.Fatalf("silent seq jump %d -> %d", last, ev.Seq)
			}
			last = ev.Seq
			gapOpen = false
			if ev.Kind == cpm.DiffRemove {
				delete(state, ev.Query)
			} else {
				state[ev.Query] = ev.Result
			}
		case EventSnapshot:
			if ev.Kind == cpm.DiffRemove {
				delete(state, ev.Query)
			} else {
				state[ev.Query] = ev.Result
			}
		}
	}
	for drained := false; !drained; {
		select {
		case ev := <-sub.Events():
			apply(ev)
		case <-time.After(500 * time.Millisecond):
			drained = true
		}
	}
	if gaps == 0 {
		t.Fatalf("no gap markers despite tiny buffers over %d busy cycles", stallCycles)
	}

	// Phase C: reconnect with last-seen Seq. The re-sync must open with a
	// reset gap and then snapshot every query to current state.
	preGaps := sub.Gaps()
	watcher.breakConn()
	ev := recv(t, sub)
	for ev.Type != EventGap || ev.Seq != 0 { // drops may still be in flight ahead of the reset
		apply(ev)
		ev = recv(t, sub)
	}
	apply(ev)
	if sub.Gaps() <= preGaps {
		t.Fatal("reconnect did not count as a gap")
	}
	for range queries {
		ev := recv(t, sub)
		if ev.Type != EventSnapshot {
			t.Fatalf("re-sync delivered %+v, want snapshot", ev)
		}
		apply(ev)
	}

	// Snapshot+stream now equals polling, for every query.
	for i := range queries {
		id := cpm.QueryID(i)
		want, err := ingest.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := state[id]
		if !ok {
			t.Fatalf("q%d never delivered", id)
		}
		if len(got) != len(want) {
			t.Fatalf("q%d replay %v, polled %v", id, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("q%d replay %v, polled %v", id, got, want)
			}
		}
	}
}

// TestServerStats polls the server's metrics registry over the wire and
// checks the readings reflect the traffic this client generated.
func TestServerStats(t *testing.T) {
	_, addr := startServer(t, cpm.Options{GridSize: 16}, server.Options{})
	c, err := Dial(addr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Bootstrap(map[cpm.ObjectID]cpm.Point{1: {X: 0.3, Y: 0.3}}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(1, cpm.Point{X: 0.3, Y: 0.3}, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Tick(cpm.Batch{}); err != nil {
		t.Fatal(err)
	}

	stats, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, s := range stats {
		byName[s.Name] = s.Value
	}
	for name, min := range map[string]int64{
		"cpm_server_connections_accepted_total": 1,
		"cpm_monitor_objects":                   1,
		"cpm_monitor_queries":                   1,
		"cpm_monitor_cycles_total":              1,
		"cpm_server_handle_tick_ns_count":       1,
	} {
		if v, ok := byName[name]; !ok || v < min {
			t.Errorf("stat %s = %d (present %v), want >= %d", name, v, ok, min)
		}
	}
}
