package client

import (
	"reflect"
	"testing"
	"time"

	"cpm"
	"cpm/internal/chaos"
	"cpm/internal/server"
)

// TestChecksumEndToEnd: a Checksum client speaks every frame family
// (bootstrap, register, tick, result poll, subscription stream incl. a
// reconnect resume) against a real server and sees exactly what a plain
// client sees — the trailer is invisible when the link is clean.
func TestChecksumEndToEnd(t *testing.T) {
	_, addr := startServer(t, cpm.Options{GridSize: 16}, server.Options{})
	c, err := Dial(addr, Options{Checksum: true, ReconnectWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wl := testWorkload(t)
	oracle := cpm.NewMonitor(cpm.Options{GridSize: 16})
	defer oracle.Close()

	objs := wl.InitialObjects()
	if err := c.Bootstrap(objs); err != nil {
		t.Fatal(err)
	}
	oracle.Bootstrap(objs)
	for i, q := range wl.InitialQueries() {
		if err := c.RegisterQuery(cpm.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
		if err := oracle.RegisterQuery(cpm.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := c.SubscribeWith(SubscribeOptions{Buffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := 0; i < 5; i++ {
		if i == 3 {
			c.breakConn() // resume path: sealed resubscribe + gap/snapshots
		}
		b := wl.Advance()
		if err := c.Tick(b); err != nil {
			t.Fatal(err)
		}
		oracle.Tick(b)
	}
	for i := range wl.InitialQueries() {
		got, err := c.Result(cpm.QueryID(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle.Result(cpm.QueryID(i)); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: checksum client diverged from oracle:\n got %v\nwant %v", i, got, want)
		}
	}
	// The stream must have produced events/gaps without wedging.
	drained := 0
	for {
		select {
		case <-sub.Events():
			drained++
			continue
		default:
		}
		break
	}
	if drained == 0 {
		t.Fatal("subscription delivered nothing over a checksum connection")
	}
}

// TestChecksumCatchesCorruption: with CRC trailers negotiated, a link
// that flips bits produces request errors and reconnects — never a
// successful call with silently wrong state. After the link heals, the
// client reconverges with the oracle.
func TestChecksumCatchesCorruption(t *testing.T) {
	_, addr := startServer(t, cpm.Options{GridSize: 16}, server.Options{})
	link := chaos.NewLink(11)
	c, err := Dial(addr, Options{
		Checksum:      true,
		Dialer:        link.Dialer(nil),
		DialTimeout:   500 * time.Millisecond,
		Backoff:       5 * time.Millisecond,
		MaxBackoff:    50 * time.Millisecond,
		ReconnectWait: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	wl := testWorkload(t)
	oracle := cpm.NewMonitor(cpm.Options{GridSize: 16})
	defer oracle.Close()
	objs := wl.InitialObjects()
	if err := c.Bootstrap(objs); err != nil {
		t.Fatal(err)
	}
	oracle.Bootstrap(objs)
	for i, q := range wl.InitialQueries() {
		if err := c.RegisterQuery(cpm.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
		if err := oracle.RegisterQuery(cpm.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
	}

	// tick bounds one attempt: a corrupted length prefix can leave the
	// server waiting for frame bytes that never come (the CRC covers the
	// body, not the prefix), so a stalled call is cut by dropping the
	// connection — the same move a coordinator's op timeout makes.
	tick := func(b cpm.Batch) error {
		done := make(chan error, 1)
		go func() { done <- c.Tick(b) }()
		select {
		case err := <-done:
			return err
		case <-time.After(time.Second):
			c.breakConn()
			return <-done
		}
	}

	// Corrupt every client->server write. Every tick attempt must either
	// succeed cleanly (the server confirmed it: only then does the oracle
	// advance) or fail loudly. Retrying is safe here: a corrupted request
	// frame is rejected (or never completed) before the monitor sees it,
	// so a failed attempt provably did not apply.
	link.Set(chaos.Fault{Class: chaos.Corrupt})
	var failures int
	for i := 0; i < 5; i++ {
		b := wl.Advance()
		err := tick(b)
		for err != nil {
			failures++
			if failures > 1000 {
				t.Fatal("tick never got through; giving up")
			}
			if failures == 10 {
				link.Clear() // heal; the reconnect should recover the session
			}
			err = tick(b)
		}
		oracle.Tick(b)
	}
	if failures == 0 {
		t.Fatal("corrupting link produced zero request failures — corruption went undetected")
	}
	if link.Counters()[chaos.Corrupt] == 0 {
		t.Fatal("corrupt fault never fired")
	}
	for i := range wl.InitialQueries() {
		got, err := c.Result(cpm.QueryID(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := oracle.Result(cpm.QueryID(i)); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d diverged after corruption storm:\n got %v\nwant %v", i, got, want)
		}
	}
}
