package client

import (
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"time"

	"cpm"
	"cpm/internal/wire"
)

// TestFrameTimeoutCutsStalledBody pins the half-frame wedge fix: a peer
// that sends a frame header whose length overstates the body (what a
// corrupted length prefix looks like — the CRC trailer cannot cover it)
// must produce a connection error within FrameTimeout, not leave the
// read loop — and every in-flight request — blocked forever.
func TestFrameTimeoutCutsStalledBody(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// A hand-rolled peer: complete the handshake, then answer the first
	// request with a header owing 1000 bytes that never arrive.
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		buf := make([]byte, 256)
		if _, err := nc.Read(buf); err != nil { // the Hello
			return
		}
		nc.Write(wire.AppendWelcome(nil, 42))
		if _, err := nc.Read(buf); err != nil { // the request
			return
		}
		hdr := make([]byte, 6)
		binary.LittleEndian.PutUint32(hdr, 1000)
		hdr[4] = wire.ProtocolVersion
		hdr[5] = byte(wire.FrameAck)
		nc.Write(hdr)
		time.Sleep(5 * time.Second) // stall: the body never comes
	}()

	c, err := Dial(ln.Addr().String(), Options{
		DialTimeout:   time.Second,
		ReconnectWait: 500 * time.Millisecond,
		FrameTimeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	err = c.Tick(cpm.Batch{})
	if err == nil {
		t.Fatal("request against a stalled half-frame succeeded")
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("stalled body surfaced as %v, want ErrDisconnected", err)
	}
	// The bound: FrameTimeout (200ms) kills the conn, the request fails
	// once no replacement arrives within ReconnectWait. Far below the 5s
	// the peer stalls for.
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("stalled request took %v to fail; the frame deadline never fired", el)
	}
}
