package client

import (
	"errors"
	"sync"

	"cpm"
	"cpm/internal/wire"
)

// EventType classifies the events a remote subscription delivers.
type EventType uint8

const (
	// EventDiff is a live pushed result diff, identical in content to the
	// in-process cpm.ResultEvent: entered / exited / re-ranked neighbors
	// plus the full new result.
	EventDiff EventType = iota
	// EventSnapshot carries one query's full current result during
	// (re-)sync — after Subscribe with SubscribeOptions.Snapshot, or after
	// a reconnect. Treat Result as the authoritative new state (the deltas
	// are empty); Kind is DiffRemove for a query that was terminated while
	// the client was away.
	EventSnapshot
	// EventGap marks lost events: the server dropped events past this
	// consumer (slow consumption) or the stream restarted (reconnect; Seq
	// 0). Re-sync from the next event — every diff and snapshot carries
	// the full result.
	EventGap
)

// String returns a short name for the event type.
func (t EventType) String() string {
	switch t {
	case EventDiff:
		return "diff"
	case EventSnapshot:
		return "snapshot"
	case EventGap:
		return "gap"
	default:
		return "eventtype(?)"
	}
}

// Event is one delivered stream element. For EventDiff, Seq is the
// server-side subscription sequence number (contiguous unless events were
// lost — losses are always announced by a preceding EventGap). For
// EventGap, Seq is the sequence number of the next live event (0 when the
// stream restarted after a reconnect) and Lost counts the dropped events
// when known. The embedded ResultDiff is meaningful for EventDiff and
// EventSnapshot.
type Event struct {
	Type EventType
	Seq  uint64
	Lost uint64
	cpm.ResultDiff
}

// SubscribeOptions configure a remote subscription.
type SubscribeOptions struct {
	// Buffer is the server-side per-subscription buffer in events (default
	// cpm.DefaultBuffer). The client adds its own delivery buffer
	// (Options.Buffer).
	Buffer int
	// Policy is the server-side slow-consumer policy (default
	// cpm.DropOldest).
	Policy cpm.SlowConsumerPolicy
	// Snapshot requests the full current result of every subscribed query
	// (every installed query for an unfiltered subscription) as
	// EventSnapshot events at the head of the stream, so consumers start
	// from complete state instead of polling.
	Snapshot bool
}

// Subscription is a remote diff stream. Consume Events from any goroutine;
// Close to unsubscribe. The subscription survives reconnects: the client
// re-subscribes with resume points automatically and the stream carries an
// EventGap + EventSnapshot re-sync sequence instead of silent loss.
type Subscription struct {
	c    *Client
	id   uint32
	opts SubscribeOptions
	ids  []cpm.QueryID

	in   chan Event // readLoop side; never closed
	out  chan Event // consumer side; closed by the pump on shutdown
	done chan struct{}
	once sync.Once

	mu       sync.Mutex
	lastSeen map[cpm.QueryID]uint64 // per-query last diff seq, for resume
	gaps     uint64

	// established is set (under the client's mu) once the server
	// acknowledged the initial Subscribe; the reconnect loop resubscribes
	// only established subscriptions — an in-flight SubscribeWith sends
	// its own frame when the link is back, and resubscribing it too would
	// collide on the subscription id.
	established bool
}

// Subscribe opens a diff stream for the given queries (none = every
// query) with default options.
func (c *Client) Subscribe(ids ...cpm.QueryID) (*Subscription, error) {
	return c.SubscribeWith(SubscribeOptions{}, ids...)
}

// SubscribeWith opens a diff stream with explicit options. It returns
// once the server acknowledged the subscription: events published after
// the call are in the stream.
func (c *Client) SubscribeWith(opts SubscribeOptions, ids ...cpm.QueryID) (*Subscription, error) {
	if opts.Buffer <= 0 {
		opts.Buffer = cpm.DefaultBuffer
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	c.nextSub++
	s := &Subscription{
		c:        c,
		id:       c.nextSub,
		opts:     opts,
		ids:      append([]cpm.QueryID(nil), ids...),
		in:       make(chan Event, c.opts.Buffer),
		out:      make(chan Event),
		done:     make(chan struct{}),
		lastSeen: make(map[cpm.QueryID]uint64),
	}
	// Register before sending the frame: the server starts streaming the
	// moment it processes the subscribe, and those first events must find
	// the subscription in the dispatch table.
	c.subs[s.id] = s
	c.mu.Unlock()

	err := c.ack(func(dst []byte, reqID uint64) []byte {
		return wire.AppendSubscribe(dst, reqID, s.frame())
	})
	if err != nil {
		c.mu.Lock()
		if c.subs != nil {
			delete(c.subs, s.id)
		}
		c.mu.Unlock()
		s.shutdown()
		return nil, err
	}
	c.mu.Lock()
	s.established = true
	c.mu.Unlock()
	go s.pump()
	return s, nil
}

// frame builds the initial Subscribe frame.
func (s *Subscription) frame() wire.Subscribe {
	return wire.Subscribe{
		SubID:    s.id,
		Buffer:   uint32(s.opts.Buffer),
		Policy:   uint8(s.opts.Policy),
		Snapshot: s.opts.Snapshot,
		Queries:  s.ids,
	}
}

// resumeFrame builds the re-subscribe frame after a reconnect: the same
// subscription with the Reset flag (the server announces the restart with
// a reset gap and re-syncs via snapshots) plus one resume point per query
// the consumer has seen. Caller holds the client's mu; takes s.mu only
// (lock order: c.mu → s.mu).
func (s *Subscription) resumeFrame(id uint32) wire.Subscribe {
	f := s.frame()
	f.SubID = id
	f.Reset = true
	f.Snapshot = true // a resumed stream always re-syncs from snapshots
	s.mu.Lock()
	f.Resume = make([]wire.ResumePoint, 0, len(s.lastSeen))
	for q, seq := range s.lastSeen {
		f.Resume = append(f.Resume, wire.ResumePoint{Query: q, Seq: seq})
	}
	s.mu.Unlock()
	return f
}

// Events returns the delivery channel. It yields events in stream order
// and closes after Close (or the client's Close).
func (s *Subscription) Events() <-chan Event { return s.out }

// Gaps returns how many gap markers this subscription has seen — loss or
// reconnect re-syncs. A monitoring dashboard reading 0 here knows it never
// missed a transition.
func (s *Subscription) Gaps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gaps
}

// Close unsubscribes: the server stops streaming (best effort — on a dead
// connection the server-side cleanup happens via the connection teardown),
// pending events are discarded and the Events channel closes.
func (s *Subscription) Close() error {
	c := s.c
	c.mu.Lock()
	if c.subs != nil {
		delete(c.subs, s.id)
	}
	up := !c.closed && c.nc != nil
	c.mu.Unlock()
	s.shutdown()
	if !up {
		// No live connection: the server-side subscription died (or will
		// die) with the connection, and it cannot be resubscribed — it is
		// out of the dispatch table. Nothing to tell the server.
		return nil
	}
	// Best-effort unsubscribe; lifecycle errors just mean the connection
	// teardown already cleaned up server-side.
	err := c.ack(func(dst []byte, reqID uint64) []byte {
		return wire.AppendUnsubscribe(dst, reqID, s.id)
	})
	if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDisconnected) {
		return err
	}
	return nil
}

// shutdown stops delivery locally.
func (s *Subscription) shutdown() {
	s.once.Do(func() { close(s.done) })
}

// deliver hands one event to the pump. It blocks when the client-side
// buffer is full — backpressure that eventually stalls the socket and
// triggers the server-side policy — and records stream position for
// resume.
func (s *Subscription) deliver(ev Event) {
	switch ev.Type {
	case EventDiff:
		s.mu.Lock()
		s.lastSeen[ev.Query] = ev.Seq
		s.mu.Unlock()
	case EventGap:
		s.mu.Lock()
		s.gaps++
		s.mu.Unlock()
	case EventSnapshot:
		if ev.Kind == cpm.DiffRemove {
			s.mu.Lock()
			delete(s.lastSeen, ev.Query)
			s.mu.Unlock()
		}
	}
	select {
	case s.in <- ev:
	case <-s.done:
	}
}

// pump moves events from the receive buffer to the consumer channel and
// closes it on shutdown — the only goroutine that sends on out, so the
// close is race-free.
func (s *Subscription) pump() {
	defer close(s.out)
	for {
		select {
		case ev := <-s.in:
			select {
			case s.out <- ev:
			case <-s.done:
				return
			}
		case <-s.done:
			return
		}
	}
}
