package cpm

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"cpm/workload"
)

// recvEvent reads one event or fails the test after a timeout.
func recvEvent(t *testing.T, sub *Subscription) ResultEvent {
	t.Helper()
	select {
	case ev, ok := <-sub.Events():
		if !ok {
			t.Fatal("event stream closed unexpectedly")
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for event")
		panic("unreachable")
	}
}

func streamWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.New(
		workload.CityOptions{Width: 16, Height: 16, Seed: 99},
		workload.Params{
			N: 400, NumQueries: 12,
			ObjectSpeed: workload.Medium, QuerySpeed: workload.Medium,
			ObjectAgility: 0.5, QueryAgility: 0.4,
			Seed: 5,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSubscribeEquivalence is the push/pull equivalence property of the
// acceptance criteria: for identical workloads, at 1 and at 8 shards, the
// cumulative diff stream reconstructs exactly the polled Result sets every
// cycle — and the two shard counts produce byte-for-byte the same event
// stream.
func TestSubscribeEquivalence(t *testing.T) {
	const k, cycles = 4, 15
	var streams [][]ResultEvent
	for _, shards := range []int{1, 8} {
		w := streamWorkload(t)
		m := NewMonitor(Options{GridSize: 16, Shards: shards})
		m.Bootstrap(w.InitialObjects())
		sub := m.SubscribeWith(SubscribeOptions{Buffer: 4096})
		var events []ResultEvent

		replay := make(map[QueryID]map[ObjectID]float64)
		live := make(map[QueryID]bool)
		apply := func(ev ResultEvent) {
			events = append(events, ev)
			if ev.Kind == DiffRemove {
				delete(replay, ev.Query)
				return
			}
			set := replay[ev.Query]
			if set == nil {
				set = make(map[ObjectID]float64)
				replay[ev.Query] = set
			}
			for _, id := range ev.Exited {
				delete(set, id)
			}
			for _, n := range ev.Entered {
				set[n.ID] = n.Dist
			}
			for _, n := range ev.Reranked {
				set[n.ID] = n.Dist
			}
			// The delta must rebuild the carried full result exactly.
			if len(set) != len(ev.Result) {
				t.Fatalf("shards=%d q%d: delta rebuilds %d entries, Result has %d",
					shards, ev.Query, len(set), len(ev.Result))
			}
			for _, n := range ev.Result {
				if d, ok := set[n.ID]; !ok || d != n.Dist {
					t.Fatalf("shards=%d q%d: delta replay %v missing %v", shards, ev.Query, set, n)
				}
			}
		}
		checkAll := func(stage string) {
			t.Helper()
			for qid := range live {
				want := m.Result(qid)
				set := replay[qid]
				if len(set) != len(want) {
					t.Fatalf("shards=%d %s q%d: replay %v, polled %v", shards, stage, qid, set, want)
				}
				for _, n := range want {
					if d, ok := set[n.ID]; !ok || d != n.Dist {
						t.Fatalf("shards=%d %s q%d: replay %v, polled %v", shards, stage, qid, set, want)
					}
				}
			}
		}

		for i, q := range w.InitialQueries() {
			if err := m.RegisterQuery(QueryID(i), q, k); err != nil {
				t.Fatal(err)
			}
			live[QueryID(i)] = true
			apply(recvEvent(t, sub)) // the install event
		}
		for i, c := range []Point{{X: 0.3, Y: 0.3}, {X: 0.7, Y: 0.6}} {
			id := QueryID(100 + i)
			if err := m.RegisterRangeQuery(id, c, 0.12); err != nil {
				t.Fatal(err)
			}
			live[id] = true
			apply(recvEvent(t, sub))
		}
		checkAll("installed")

		for cycle := 0; cycle < cycles; cycle++ {
			m.Tick(w.Advance())
			for range m.ChangedQueries() { // exactly one event per changed query
				apply(recvEvent(t, sub))
			}
			checkAll("cycle")
			switch cycle {
			case 5: // terminate a query mid-run
				m.RemoveQuery(3)
				delete(live, 3)
				apply(recvEvent(t, sub))
			case 8: // a late installation
				if err := m.RegisterQuery(200, Point{X: 0.5, Y: 0.5}, k); err != nil {
					t.Fatal(err)
				}
				live[200] = true
				apply(recvEvent(t, sub))
			case 10: // the range fence relocates
				before := m.Result(100)
				if err := m.MoveQuery(100, Point{X: 0.4, Y: 0.4}); err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(before, m.Result(100)) { // a move event fires iff the result changed
					apply(recvEvent(t, sub))
				}
			}
			checkAll("after churn")
		}
		if sub.Dropped() != 0 {
			t.Fatalf("shards=%d: %d events dropped despite ample buffer", shards, sub.Dropped())
		}
		m.Close()
		if _, ok := <-sub.Events(); ok {
			t.Fatalf("shards=%d: stream still open after Close", shards)
		}
		streams = append(streams, events)
	}
	if !reflect.DeepEqual(streams[0], streams[1]) {
		a, b := streams[0], streams[1]
		if len(a) != len(b) {
			t.Fatalf("stream lengths differ: 1 shard %d events, 8 shards %d", len(a), len(b))
		}
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("event %d differs:\n1 shard:  %+v\n8 shards: %+v", i, a[i], b[i])
			}
		}
	}
}

// TestStreamManySubscribersRace drives a sharded monitor while N
// subscribers with mixed policies and tight buffers consume concurrently,
// one of them unsubscribing mid-delivery — the race-detector test of the
// notify subsystem end to end (run via `go test -race .`).
func TestStreamManySubscribersRace(t *testing.T) {
	const k, cycles, nSubs = 3, 20, 6
	w := streamWorkload(t)
	m := NewMonitor(Options{GridSize: 16, Shards: 8})
	m.Bootstrap(w.InitialObjects())

	subs := make([]*Subscription, nSubs)
	for i := range subs {
		opts := SubscribeOptions{Buffer: 4, Policy: DropOldest}
		if i%2 == 1 {
			opts.Policy = CoalesceLatest
		}
		if i == nSubs-1 {
			subs[i] = m.SubscribeWith(opts, 1, 2, 3) // a filtered subscriber
		} else {
			subs[i] = m.SubscribeWith(opts)
		}
	}
	var wg sync.WaitGroup
	counts := make([]int, nSubs)
	for i, sub := range subs {
		wg.Add(1)
		go func(i int, sub *Subscription) {
			defer wg.Done()
			for ev := range sub.Events() {
				if len(ev.Result) > 0 || ev.Kind == DiffRemove {
					counts[i]++
				}
				if i == 0 && counts[0] == 10 {
					sub.Close() // unsubscribe mid-delivery, then drain
				}
			}
		}(i, sub)
	}

	for i, q := range w.InitialQueries() {
		if err := m.RegisterQuery(QueryID(i), q, k); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < cycles; cycle++ {
		m.Tick(w.Advance())
	}
	m.RemoveQuery(2)
	m.Close()
	wg.Wait()

	for i, c := range counts {
		if c == 0 {
			t.Fatalf("subscriber %d received nothing", i)
		}
	}
	total := 0
	for _, sub := range subs {
		total += int(sub.Dropped())
	}
	if total == 0 {
		t.Log("no events dropped despite tight buffers (fast consumers); policies untested for drops this run")
	}
}
